"""The block service: engine-level semantics and live TCP end-to-end.

The engine-level tests drive :meth:`BlockService.handle_request`
directly with a stub connection and run the simulator to completion —
fully deterministic QoS/latency checks with no sockets or threads.
The e2e tests stand up the real asyncio server (``accel=inf``: the
engine never sleeps) and talk to it through the bundled client.
"""

import asyncio
from math import inf

import pytest

from repro.service import (
    QoSPolicy,
    Request,
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
)
from repro.service.client import ServiceClient, run_load
from repro.service.server import BlockService, ServiceConfig
from repro.errors import ConfigError


class StubConn:
    """Collects replies synchronously (no loop, no thread)."""

    def __init__(self):
        self.responses = []

    def send_threadsafe(self, response):
        self.responses.append(response)

    def by_status(self, status):
        return [r for r in self.responses if r.status == status]


def offline_service(**kwargs) -> BlockService:
    """A service whose engine is driven manually (never started)."""
    return BlockService(ServiceConfig(**kwargs))


class TestEngineSemantics:
    def test_read_write_complete_with_latency(self):
        service = offline_service()
        conn = StubConn()
        service.handle_request(conn, Request("READ", "a", 1, 0, 8))
        service.handle_request(conn, Request("WRITE", "a", 2, 64, 8))
        service.sim.run()
        ok = conn.by_status(STATUS_OK)
        assert {r.req_id for r in ok} == {1, 2}
        assert all(r.latency_ms > 0 for r in ok)

    def test_shed_counts_are_deterministic(self):
        """2 slots + 3 queue entries: exactly 5 of 10 one-shot arrivals
        complete, the rest get BUSY synchronously at admission."""
        service = offline_service(
            default_policy=QoSPolicy(max_inflight=2, max_queue=3)
        )
        conn = StubConn()
        for i in range(10):
            service.handle_request(conn, Request("READ", "a", i, i * 8, 8))
        assert len(conn.by_status(STATUS_BUSY)) == 5
        service.sim.run()
        ok = conn.by_status(STATUS_OK)
        assert len(ok) == 5
        # Queued requests completed later and waited longer.
        assert sorted(r.req_id for r in ok) == [0, 1, 2, 3, 4]
        queued_waits = [r.queue_ms for r in ok if r.req_id >= 2]
        assert all(w > 0 for w in queued_waits)

    def test_token_bucket_paces_dispatch(self):
        """rate=100 IOPS, burst 1: request k waits ~10k simulated ms in
        the service queue before the array even sees it."""
        service = offline_service(
            default_policy=QoSPolicy(
                max_inflight=8, max_queue=8, rate_iops=100.0, burst=1.0
            )
        )
        conn = StubConn()
        for i in range(4):
            service.handle_request(conn, Request("READ", "a", i, i * 64, 8))
        service.sim.run()
        ok = sorted(conn.by_status(STATUS_OK), key=lambda r: r.req_id)
        assert len(ok) == 4
        waits = [r.queue_ms for r in ok]
        assert waits[0] == 0.0
        for k, wait in enumerate(waits[1:], start=1):
            assert wait == pytest.approx(10.0 * k, rel=0.01)

    def test_tenants_isolated(self):
        """One tenant saturating its own envelope never sheds another."""
        service = offline_service(
            default_policy=QoSPolicy(max_inflight=1, max_queue=0)
        )
        greedy, polite = StubConn(), StubConn()
        for i in range(5):
            service.handle_request(greedy, Request("READ", "g", i, i * 8, 8))
        service.handle_request(polite, Request("READ", "p", 1, 256, 8))
        service.sim.run()
        assert len(greedy.by_status(STATUS_BUSY)) == 4
        assert len(polite.by_status(STATUS_OK)) == 1
        assert polite.by_status(STATUS_BUSY) == []

    def test_stats_snapshot(self):
        service = offline_service()
        conn = StubConn()
        service.handle_request(conn, Request("READ", "a", 1, 0, 8))
        service.sim.run()
        service.handle_request(conn, Request("STATS", "a", 2))
        stats = conn.responses[-1].data
        assert stats["capacity_blocks"] == service.capacity_blocks
        assert stats["tenants"]["a"]["completed"] == 1
        assert stats["tenants"]["a"]["latency_ms"]["p50"] > 0

    def test_pin_untimed_and_counted(self):
        service = offline_service()
        conn = StubConn()
        service.handle_request(conn, Request("PIN", "a", 1, 0, 16))
        (response,) = conn.by_status(STATUS_OK)
        assert response.data == {"pinned": 16}
        pinned = sum(len(c.pinned) for c in service.system.controllers)
        assert pinned == 16

    def test_raid1_pin_pins_both_replicas(self):
        service = offline_service(raid="raid1")
        conn = StubConn()
        service.handle_request(conn, Request("PIN", "a", 1, 0, 8))
        assert conn.responses[0].data == {"pinned": 8}
        half = service.mirror.half
        for disk in range(half):
            primary = len(service.system.controllers[disk].pinned)
            partner = len(service.system.controllers[disk + half].pinned)
            assert primary == partner

    def test_raid1_halves_capacity(self):
        full = offline_service()
        mirrored = offline_service(raid="raid1")
        assert mirrored.capacity_blocks == full.capacity_blocks // 2

    def test_raid1_io_round_trip(self):
        service = offline_service(raid="raid1")
        conn = StubConn()
        service.handle_request(conn, Request("WRITE", "a", 1, 0, 8))
        service.handle_request(conn, Request("READ", "a", 2, 0, 8))
        service.sim.run()
        assert len(conn.by_status(STATUS_OK)) == 2

    def test_out_of_range_rejected_by_validate(self):
        service = offline_service()
        request = Request("READ", "a", 1, service.capacity_blocks - 4, 8)
        assert "exceeds" in service.validate(request)
        assert service.validate(Request("STATS", "a", 1)) is None

    def test_bad_raid_mode_refused(self):
        with pytest.raises(ConfigError, match="raid"):
            ServiceConfig(raid="raid6")

    def test_raid1_odd_disks_refused(self):
        with pytest.raises(ConfigError, match="even"):
            ServiceConfig(raid="raid1", n_disks=3)


class TestLiveService:
    """Real asyncio server + TCP client, engine free-running."""

    @staticmethod
    def serve(coro_fn, **config_kwargs):
        config_kwargs.setdefault("accel", inf)

        async def go():
            async with BlockService(ServiceConfig(**config_kwargs)) as service:
                sock = service._server.sockets[0]
                host, port = sock.getsockname()[:2]
                return await coro_fn(service, host, port)

        return asyncio.run(go())

    def test_read_write_stats_over_tcp(self):
        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            await client.connect()
            try:
                read = await client.request(
                    Request("READ", "alice", client.next_id(), 0, 8)
                )
                write = await client.request(
                    Request("WRITE", "alice", client.next_id(), 128, 8)
                )
                stats = await client.stats("alice")
                return read, write, stats
            finally:
                await client.close()

        read, write, stats = self.serve(scenario)
        assert read.status == STATUS_OK and read.latency_ms > 0
        assert write.status == STATUS_OK and write.latency_ms > 0
        assert stats["tenants"]["alice"]["completed"] == 2

    def test_out_of_range_gets_error_reply(self):
        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            await client.connect()
            try:
                return await client.request(
                    Request(
                        "READ", "a", client.next_id(),
                        service.capacity_blocks, 8,
                    )
                )
            finally:
                await client.close()

        response = self.serve(scenario)
        assert response.status == STATUS_ERROR
        assert "exceeds" in response.error

    def test_malformed_op_gets_error_without_dropping_connection(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            from repro.service.protocol import encode_frame, read_frame

            writer.write(encode_frame({"op": "TRIM", "id": 5}))
            await writer.drain()
            error = await read_frame(reader)
            # The connection survives a bad op: a valid request after it
            # still gets served.
            writer.write(
                encode_frame(
                    {"op": "READ", "tenant": "a", "id": 6,
                     "start": 0, "blocks": 4}
                )
            )
            await writer.drain()
            ok = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return error, ok

        error, ok = self.serve(scenario)
        assert error["status"] == STATUS_ERROR and error["id"] == 5
        assert ok["status"] == STATUS_OK and ok["id"] == 6

    def test_mixed_burst_with_run_load(self):
        async def scenario(service, host, port):
            return await run_load(
                host, port,
                ["alice", "bob"],
                requests=30,
                blocks=8,
                write_frac=0.25,
                window=16,
                seed=3,
                pin_blocks=8,
                retries=2,
            )

        result = self.serve(scenario)
        assert result["total_errors"] == 0
        assert result["total_ok"] + result["total_busy"] == 60
        assert result["total_ok"] > 0
        for tenant in ("alice", "bob"):
            r = result["tenants"][tenant]
            assert r["pinned"] == 8
            if r["ok"]:
                assert 0 < r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"]

    def test_shedding_visible_over_tcp(self):
        async def scenario(service, host, port):
            return await run_load(
                host, port,
                ["hog"],
                requests=40,
                blocks=8,
                write_frac=0.0,
                window=40,
                seed=5,
                retries=2,
            )

        # Finite accel: each read occupies observable wall time, so the
        # 40-wide client window reliably overflows the 2+4 envelope
        # (at accel=inf the engine can finish a request between two
        # arrivals and never shed).
        result = self.serve(
            scenario,
            accel=100.0,
            default_policy=QoSPolicy(max_inflight=2, max_queue=4),
        )
        hog = result["tenants"]["hog"]
        assert hog["busy"] > 0
        assert hog["ok"] > 0
        assert hog["errors"] == 0

    def test_engine_thread_stopped_after_context_exit(self):
        async def scenario(service, host, port):
            return service

        service = self.serve(scenario)
        assert service._engine is None
        assert not service.sim._running


class TestServiceDemoExperiment:
    def test_runs_and_reports_per_tenant(self):
        from repro.experiments import service_demo

        from repro.experiments.base import scaled_count

        result = service_demo.run(scale=0.15, seed=7)
        requests = scaled_count(service_demo.BASE_REQUESTS, 0.15, minimum=20)
        assert result.x_values == list(service_demo.TENANTS)
        for i, tenant in enumerate(result.x_values):
            ok = result.get("ok")[i]
            busy = result.get("busy")[i]
            assert result.get("errors")[i] == 0
            assert ok + busy == requests
            assert ok > 0
            if ok:
                assert result.get("p50_ms")[i] > 0
                assert (
                    result.get("p50_ms")[i]
                    <= result.get("p95_ms")[i]
                    <= result.get("p99_ms")[i]
                )

    def test_registered_as_indivisible_sweep(self):
        from repro.experiments.registry import EXPERIMENTS, RUNNERS, SWEEPS

        assert "service_demo" in EXPERIMENTS
        assert "service_demo" in RUNNERS
        assert SWEEPS["service_demo"].axis is None
