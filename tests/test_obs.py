"""The observability layer: tracer, histograms, result neutrality."""

import pytest

from repro import SEGM, SyntheticSpec, SyntheticWorkload, TechniqueRunner
from repro import ultrastar_36z15_config
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    default_latency_buckets_ms,
)
from repro.obs.timeline import drive_time_in_state, spans_time_in_state
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    active_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from repro.units import KB


def small_workload():
    spec = SyntheticSpec(n_requests=200, file_size_bytes=16 * KB)
    return SyntheticWorkload(spec).build()


class TestHistogram:
    def test_observe_and_counts(self):
        h = Histogram([1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == 555.5
        assert h.min == 0.5 and h.max == 500.0

    def test_percentile_bracketed_by_buckets(self):
        h = Histogram(default_latency_buckets_ms())
        samples = [float(i) for i in range(1, 101)]
        h.observe_many(samples)
        # p50 of 1..100 is 50; the containing bucket is (25, 50].
        assert 25.0 <= h.percentile(50) <= 50.0
        assert h.percentile(50) <= h.percentile(95) <= h.percentile(99)
        assert h.percentile(100) <= h.max

    def test_overflow_bucket_reports_max(self):
        h = Histogram([1.0])
        h.observe(7.0)
        h.observe(9.0)
        assert h.percentile(99) == 9.0

    def test_empty(self):
        h = Histogram([1.0])
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_bad_percentile_rejected(self):
        h = Histogram([1.0])
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_merge(self):
        a = Histogram([1.0, 10.0])
        b = Histogram([1.0, 10.0])
        a.observe(0.5)
        b.observe(5.0)
        m = a.merge(b)
        assert m.count == 2
        assert m.counts == [1, 1, 0]
        assert m.min == 0.5 and m.max == 5.0
        with pytest.raises(ValueError):
            a.merge(Histogram([1.0]))

    def test_equality(self):
        a = Histogram([1.0, 10.0])
        b = Histogram([1.0, 10.0])
        assert a == b
        a.observe(2.0)
        assert a != b
        b.observe(2.0)
        assert a == b


class TestRegistry:
    def test_counter_and_histogram_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        assert reg.counter("hits") is c
        h = reg.histogram("lat")
        assert reg.histogram("lat") is h
        assert "hits" in reg and len(reg) == 2

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_counter_merge(self):
        a = Counter("n")
        b = Counter("n")
        a.inc(3)
        b.inc(4)
        assert a.merge(b).value == 7

    def test_to_dict_and_text(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.histogram("lat").observe(1.0)
        d = reg.to_dict()
        assert d["n"] == 2 and d["lat"]["count"] == 1
        assert "n: 2" in reg.to_text()


class TestTracer:
    def test_span_ids_and_balance(self):
        t = Tracer()
        s1 = t.begin("host", "record", stream=0)
        s2 = t.begin("host", "record", stream=1)
        assert s1 != s2 and s1 > 0
        assert t.open_spans == 2
        t.end("host", "record", s2)
        t.end("host", "record", s1)
        assert t.open_spans == 0
        phases = [e[1] for e in t.events]
        assert phases == ["b", "b", "e", "e"]

    def test_limit_drops_and_counts(self):
        t = Tracer(limit=3)
        for _ in range(5):
            t.instant("bus", "tick")
        assert len(t.events) == 3
        assert t.dropped == 2
        with pytest.raises(ValueError):
            Tracer(limit=0)

    def test_limit_still_closes_open_spans(self):
        t = Tracer(limit=1)
        span = t.begin("host", "record")
        t.instant("bus", "tick")  # dropped
        t.end("host", "record", span)  # forced through
        assert [e[1] for e in t.events] == ["b", "e"]

    def test_limit_never_orphans_ends(self):
        """A truncated trace must stay balanced: an "e" whose "b" was
        dropped is dropped too, so the export still validates."""
        from repro.obs.export import chrome_trace_dict
        from repro.obs.validate import validate_chrome_trace

        t = Tracer(limit=3)
        kept = t.begin("host", "record")   # recorded
        t.instant("bus", "tick")           # recorded
        t.instant("bus", "tick")           # recorded (at limit now)
        lost = t.begin("host", "record")   # dropped
        t.end("host", "record", lost)      # must also be dropped
        t.end("host", "record", kept)      # forced through
        assert t.open_spans == 0
        phases = [e[1] for e in t.events]
        assert phases == ["b", "i", "i", "e"]
        assert validate_chrome_trace(chrome_trace_dict(t)) == []

    def test_new_run_partitions(self):
        t = Tracer()
        t.new_run("first")
        assert t.runs == ["first"]  # renames the implicit empty run
        t.instant("bus", "tick")
        t.new_run("second")
        t.instant("bus", "tick")
        assert t.runs == ["first", "second"]
        assert [e[0] for e in t.events] == [0, 1]

    def test_null_tracer_records_nothing(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("host", "x") == 0
        NULL_TRACER.end("host", "x", 0)
        NULL_TRACER.complete("host", "x", 0.0, 1.0)
        NULL_TRACER.instant("host", "x")
        assert NULL_TRACER.events == ()
        assert len(NULL_TRACER) == 0

    def test_active_tracer_registry(self):
        assert active_tracer() is NULL_TRACER
        t = Tracer()
        install_tracer(t)
        try:
            assert active_tracer() is t
        finally:
            uninstall_tracer()
        assert active_tracer() is NULL_TRACER

    def test_tracing_context_restores(self):
        t = Tracer()
        with tracing(t) as inside:
            assert inside is t
            assert active_tracer() is t
        assert active_tracer() is NULL_TRACER


class TestTracedRuns:
    @pytest.fixture(scope="class")
    def traced(self):
        layout, trace = small_workload()
        config = ultrastar_36z15_config()
        tracer = Tracer()
        with tracing(tracer):
            system = System(config)
            driver = ReplayDriver(system, trace)
            elapsed = driver.run()
        return tracer, system, driver, elapsed

    def test_all_spans_closed(self, traced):
        tracer, _, _, _ = traced
        assert tracer.open_spans == 0

    def test_one_host_span_per_record(self, traced):
        tracer, _, driver, _ = traced
        begins = [e for e in tracer.events if e[1] == "b" and e[2] == "host"]
        assert len(begins) == driver.records_completed

    def test_span_timestamps_ordered(self, traced):
        tracer, _, _, elapsed = traced
        opens = {}
        for _run, ph, track, _name, ts, dur, span, _args in tracer.events:
            assert 0.0 <= ts <= elapsed
            if ph == "X":
                assert dur >= 0.0 and ts + dur <= elapsed + 1e-6
            elif ph == "b":
                opens[span] = ts
            elif ph == "e":
                assert ts >= opens.pop(span)
        assert not opens

    def test_media_spans_cover_drive_busy_time(self, traced):
        tracer, system, _, _ = traced
        per_disk = spans_time_in_state(tracer.events)
        for ctrl in system.controllers:
            drive = ctrl.drive
            if drive.busy_time == 0:
                continue
            covered = per_disk[f"disk{ctrl.disk_id}"]["busy"]
            assert covered >= 0.99 * drive.busy_time
            assert covered <= drive.busy_time + 1e-6

    def test_span_and_drive_breakdowns_agree(self, traced):
        tracer, system, _, elapsed = traced
        per_disk = spans_time_in_state(tracer.events, elapsed_ms=elapsed)
        for ctrl in system.controllers:
            from_drive = drive_time_in_state(ctrl.drive, elapsed)
            from_spans = per_disk[f"disk{ctrl.disk_id}"]
            for state in ("overhead", "seek", "rotation", "transfer", "busy"):
                assert from_spans[state] == pytest.approx(from_drive[state])


class TestTracingNeutrality:
    """Tracing must observe the simulation, never perturb it."""

    @pytest.fixture(scope="class")
    def pair(self):
        layout, trace = small_workload()
        config = ultrastar_36z15_config()
        runner = TechniqueRunner(layout, trace)
        plain = runner.run(config, SEGM)
        with tracing(Tracer()):
            traced = runner.run(config, SEGM)
        return plain, traced

    def test_results_identical(self, pair):
        plain, traced = pair
        assert traced.io_time_ms == plain.io_time_ms
        assert traced.records == plain.records
        assert traced.commands == plain.commands
        assert traced.record_latencies_ms == plain.record_latencies_ms
        assert traced.latency_histogram == plain.latency_histogram
        assert traced.controller == plain.controller
        assert traced.cache == plain.cache
        assert traced.disk_utilizations == plain.disk_utilizations
        assert traced.bus_utilization == plain.bus_utilization
        assert traced.time_in_state == plain.time_in_state

    def test_time_in_state_consistent(self, pair):
        plain, _ = pair
        assert plain.time_in_state, "collector must fill time_in_state"
        for b in plain.time_in_state:
            assert b["busy"] == pytest.approx(
                b["overhead"] + b["seek"] + b["rotation"] + b["transfer"]
            )
            assert b["idle"] >= 0.0

    def test_controller_stats_expose_phase_split(self, pair):
        plain, _ = pair
        stats = plain.controller
        assert stats.media_busy_ms > 0
        assert stats.media_busy_ms == pytest.approx(
            stats.seek_ms + stats.rotation_ms + stats.transfer_ms
            + stats.overhead_ms
        )
