"""Admission control: token buckets, FIFO queues, shedding."""

import pytest

from repro.errors import ConfigError
from repro.service.qos import (
    DISPATCH,
    QUEUED,
    SHED,
    QoSPolicy,
    TenantQueue,
    TokenBucket,
)


class TestTokenBucket:
    def test_unmetered_always_has_tokens(self):
        bucket = TokenBucket(0.0, 0.0)
        for _ in range(100):
            assert bucket.try_take(0.0)
        assert bucket.ms_until_token(0.0) == 0.0

    def test_burst_then_exhaustion(self):
        bucket = TokenBucket(100.0, 3.0)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refills_with_simulated_time(self):
        bucket = TokenBucket(100.0, 1.0)  # one token per 10 ms
        assert bucket.try_take(0.0)
        assert not bucket.try_take(5.0)
        assert bucket.try_take(10.0)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(100.0, 2.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        # A long idle gap matures at most ``burst`` tokens.
        assert bucket.try_take(10_000.0)
        assert bucket.try_take(10_000.0)
        assert not bucket.try_take(10_000.0)

    def test_ms_until_token(self):
        bucket = TokenBucket(100.0, 1.0)
        bucket.try_take(0.0)
        assert bucket.ms_until_token(0.0) == pytest.approx(10.0)
        assert bucket.ms_until_token(4.0) == pytest.approx(6.0)
        assert bucket.ms_until_token(10.0) == 0.0

    def test_negative_rate_refused(self):
        with pytest.raises(ConfigError, match="rate"):
            TokenBucket(-1.0, 1.0)

    def test_metered_needs_burst(self):
        with pytest.raises(ConfigError, match="burst"):
            TokenBucket(10.0, 0.5)


class TestQoSPolicy:
    def test_defaults_valid(self):
        QoSPolicy()

    def test_inflight_floor(self):
        with pytest.raises(ConfigError, match="max_inflight"):
            QoSPolicy(max_inflight=0)

    def test_negative_queue_refused(self):
        with pytest.raises(ConfigError, match="max_queue"):
            QoSPolicy(max_queue=-1)


class TestTenantQueue:
    def test_dispatch_under_limit(self):
        tenant = TenantQueue("t", QoSPolicy(max_inflight=2, max_queue=2))
        assert tenant.admit("a", 0.0) == DISPATCH
        assert tenant.admit("b", 0.0) == DISPATCH
        assert tenant.inflight == 2

    def test_queue_then_shed(self):
        tenant = TenantQueue("t", QoSPolicy(max_inflight=1, max_queue=2))
        assert tenant.admit("a", 0.0) == DISPATCH
        assert tenant.admit("b", 0.0) == QUEUED
        assert tenant.admit("c", 0.0) == QUEUED
        assert tenant.admit("d", 0.0) == SHED
        assert tenant.snapshot() == (1, 0, 2, 1, 1, 2)

    def test_zero_queue_sheds_immediately(self):
        tenant = TenantQueue("t", QoSPolicy(max_inflight=1, max_queue=0))
        assert tenant.admit("a", 0.0) == DISPATCH
        assert tenant.admit("b", 0.0) == SHED

    def test_completion_drains_fifo_in_order(self):
        tenant = TenantQueue("t", QoSPolicy(max_inflight=1, max_queue=4))
        tenant.admit("a", 0.0)
        tenant.admit("b", 0.0)
        tenant.admit("c", 0.0)
        assert tenant.on_complete(1.0) == ["b"]
        assert tenant.on_complete(2.0) == ["c"]
        assert tenant.on_complete(3.0) == []
        assert tenant.inflight == 0
        assert tenant.completed == 3

    def test_arrival_behind_queue_never_jumps_it(self):
        """FIFO: even with a free slot, a new arrival queues behind
        earlier waiters instead of overtaking them."""
        tenant = TenantQueue("t", QoSPolicy(max_inflight=2, max_queue=4))
        tenant.admit("a", 0.0)
        tenant.admit("b", 0.0)
        tenant.admit("c", 0.0)  # queued: both slots taken
        tenant.inflight = 1  # a slot frees without a drain (token case)
        assert tenant.admit("d", 0.0) == QUEUED
        assert list(tenant.queue) == ["c", "d"]

    def test_token_bucket_gates_dispatch(self):
        policy = QoSPolicy(max_inflight=8, max_queue=8, rate_iops=100.0, burst=1.0)
        tenant = TenantQueue("t", policy)
        assert tenant.admit("a", 0.0) == DISPATCH
        assert tenant.admit("b", 0.0) == QUEUED  # slot free, no token
        assert tenant.drain(5.0) == []
        assert tenant.drain(10.0) == ["b"]  # token matured

    def test_next_wakeup_only_when_token_blocked(self):
        policy = QoSPolicy(max_inflight=1, max_queue=8, rate_iops=100.0, burst=2.0)
        tenant = TenantQueue("t", policy)
        assert tenant.next_wakeup_ms(0.0) is None  # empty queue
        tenant.admit("a", 0.0)
        tenant.admit("b", 0.0)
        # Head is blocked on the in-flight bound, not tokens: no timer —
        # the completion will drain it.
        assert tenant.next_wakeup_ms(0.0) is None
        tenant.on_complete(0.0)  # dispatches "b", spends 2nd token
        tenant.admit("c", 0.0)
        tenant.on_complete(0.0)  # slot free; "c" blocked on tokens now
        assert tenant.next_wakeup_ms(0.0) == pytest.approx(10.0)
