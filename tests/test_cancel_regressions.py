"""Regressions: cancelling already-fired events must not corrupt the queue.

Fired events used to keep ``cancelled=False``, so ``Simulator.cancel``
on a stale handle decremented ``EventQueue._live`` a second time —
``pending`` went negative and ``__bool__`` lied. These tests pin the
fix at the engine level and at the three exposed call sites
(``QueueDepthSampler.stop``, ``HdcManager.finish``,
``MediaPath._cancel_wait``).
"""


from repro.config import ArrayParams, CacheParams, DiskParams, make_config
from repro.hdc.manager import HdcManager
from repro.hdc.planner import plan_pin_sets
from repro.host.system import System
from repro.metrics.sampling import QueueDepthSampler
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.units import KB, MB


class TestEngineCancelAfterFire:
    def test_pending_stays_zero_when_cancelling_fired_event(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        sim.cancel(event)  # pre-fix: pending became -1
        assert sim.pending == 0
        sim.cancel(event)  # and -2 on a second stale cancel
        assert sim.pending == 0

    def test_live_count_not_poisoned_for_later_events(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(fired)
        # pre-fix the poisoned count made the queue report empty with
        # one live event inside
        sim.schedule(1.0, lambda: None)
        assert sim.pending == 1
        assert bool(sim._queue)
        sim.run()
        assert sim.pending == 0

    def test_cancel_fired_then_pending_mix(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.run()
        pending = sim.schedule(5.0, lambda: None)
        sim.cancel(fired)
        sim.cancel(pending)
        assert sim.pending == 0
        assert sim.run() == 1.0  # clock untouched by the cancelled event

    def test_event_cancel_noop_after_fire(self):
        sim = Simulator()
        calls = []
        event = sim.schedule(1.0, lambda: calls.append(1))
        sim.run()
        event.cancel()  # direct handle cancel after firing
        assert not event.cancelled
        assert event.fired
        assert calls == [1]

    def test_step_marks_fired(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert sim.step()
        assert event.fired
        sim.cancel(event)
        assert sim.pending == 0


class TestQueueLazyDeletionUnified:
    def test_peek_time_and_pop_agree_after_cancels(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(2.0, lambda: None)
        queue.push(3.0, lambda: None)
        queue.cancel(first)
        queue.cancel(second)
        assert len(queue) == 1
        # peek_time prunes the cancelled head through the same helper
        # pop uses, so the count still matches the heap afterwards
        assert queue.peek_time() == 3.0
        assert len(queue) == 1
        assert queue.pop().time == 3.0
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_queue_cancel_is_single_source_of_truth(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert queue.cancel(event) is True
        assert queue.cancel(event) is False  # idempotent
        assert len(queue) == 0
        fired = queue.push(2.0, lambda: None)
        assert queue.pop() is fired
        assert queue.cancel(fired) is False  # fired: refused
        assert len(queue) == 0


def make_system(n_disks=2, hdc_bytes=0):
    config = make_config(
        disk=DiskParams(capacity_bytes=64 * MB),
        cache=CacheParams(
            size_bytes=256 * KB,
            block_size=4 * KB,
            segment_size_bytes=32 * KB,
            n_segments=8,
        ),
        array=ArrayParams(n_disks=n_disks, striping_unit_bytes=16 * KB),
        hdc_bytes=hdc_bytes,
        seed=8,
    )
    return System(config)


class TestSamplerStopAfterFire:
    def test_stop_after_drained_run_with_stale_handle(self):
        system = make_system()
        sampler = QueueDepthSampler(system, interval_ms=1.0)
        stale = sampler._timer  # handle to the first tick
        system.sim.run(until=3.5)  # fires ticks at 1, 2, 3
        assert len(sampler.samples) == 3
        assert stale.fired
        # the hazard: cancel a handle whose event already fired
        system.sim.cancel(stale)
        assert system.sim.pending >= 0
        sampler.stop()
        system.sim.run()
        assert system.sim.pending == 0

    def test_stop_is_idempotent(self):
        system = make_system()
        sampler = QueueDepthSampler(system, interval_ms=1.0)
        system.sim.run(until=2.5)
        sampler.stop()
        sampler.stop()
        system.sim.run()
        assert system.sim.pending == 0


class TestHdcManagerFinishAfterFire:
    def make_manager(self, system, interval_ms):
        plan = plan_pin_sets({0: 5}, system.striping, 16)
        config_system = system
        return HdcManager(
            config_system.sim,
            config_system.array,
            plan,
            flush_interval_ms=interval_ms,
        )

    def test_finish_with_stale_first_tick_handle(self):
        system = make_system(hdc_bytes=64 * KB)
        manager = self.make_manager(system, interval_ms=10.0)
        manager.setup()
        stale = manager._timer
        system.sim.run(until=35.0)
        assert manager.periodic_flushes == 3
        assert stale.fired
        system.sim.cancel(stale)  # pre-fix: corrupts the live count
        assert system.sim.pending >= 0
        manager.finish()
        system.sim.run()
        assert system.sim.pending == 0

    def test_finish_twice_after_run(self):
        system = make_system(hdc_bytes=64 * KB)
        manager = self.make_manager(system, interval_ms=10.0)
        manager.setup()
        system.sim.run(until=25.0)
        manager.finish()
        manager.finish()
        system.sim.run()
        assert system.sim.pending == 0


class TestControllerCancelWaitAfterFire:
    def make_controller(self):
        from repro.bus.scsi import ScsiBus
        from repro.cache.block import BlockCache
        from repro.config import BusParams
        from repro.controller.controller import DiskController
        from repro.disk.drive import DiskDrive
        from repro.mechanics.service import ServiceTimeModel
        from repro.readahead.none import NoReadAhead
        from repro.scheduling.fcfs import FCFSScheduler

        sim = Simulator()
        disk = DiskParams(capacity_bytes=64 * MB)
        service = ServiceTimeModel(disk, 4 * KB, deterministic_rotation=True)
        drive = DiskDrive(0, sim, service)
        controller = DiskController(
            disk_id=0,
            sim=sim,
            drive=drive,
            scheduler=FCFSScheduler(),
            cache=BlockCache(64),
            readahead=NoReadAhead(),
            bus=ScsiBus(sim, BusParams()),
            block_size=4 * KB,
            anticipatory_wait_ms=1.0,
        )
        return sim, controller

    def test_expired_anticipation_leaves_queue_consistent(self):
        from repro.controller.commands import DiskCommand

        sim, controller = self.make_controller()
        done = []
        far = controller.drive.geometry.n_blocks - 8

        def submit(start, stream, tag):
            controller.submit(
                DiskCommand(
                    0, start, 2, stream_id=stream,
                    on_complete=lambda c: done.append(tag),
                )
            )

        # stream 0 reads nearby, stream 1 far away; no follow-up ever
        # arrives, so the anticipation deadline fires (not cancelled)
        submit(100, 0, "near")
        submit(far, 1, "far")
        sim.run()
        assert done == ["near", "far"]
        assert controller.stats.anticipation_waits >= 1
        assert controller.media._wait_event is None
        assert sim.pending == 0
        controller.media._cancel_wait()  # no-op: nothing pending
        assert sim.pending == 0

    def test_cancel_wait_with_stale_fired_handle(self):
        sim, controller = self.make_controller()
        fired = sim.schedule(1.0, lambda: None)
        sim.run()
        # simulate the pre-fix hazard: the controller is left holding a
        # handle whose deadline already fired
        controller.media._wait_event = fired
        controller.media._cancel_wait()
        assert controller.media._wait_event is None
        assert sim.pending == 0
        sim.schedule(1.0, lambda: None)
        assert sim.pending == 1  # count not poisoned


def test_pending_never_negative_property():
    """Brute mix of schedule/fire/cancel orders keeps pending >= 0."""
    sim = Simulator()
    handles = [sim.schedule(float(i % 5) + 1.0, lambda: None) for i in range(20)]
    for event in handles[::2]:
        sim.cancel(event)
    sim.run(until=3.0)
    for event in handles:  # cancel everything, fired or not, twice
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending >= 0
    sim.run()
    assert sim.pending == 0
