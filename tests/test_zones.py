"""Zoned-bit-recording geometry."""

import pytest

from repro.config import DiskParams
from repro.errors import AddressError, ConfigError
from repro.geometry.zones import ZonedGeometry
from repro.units import KB, MB


@pytest.fixture
def zoned():
    return ZonedGeometry(DiskParams(capacity_bytes=512 * MB), 4 * KB, n_zones=4)


def test_zone_count_and_coverage(zoned):
    assert len(zoned.zones) == 4
    # zones tile the cylinder space exactly
    assert sum(z.n_cylinders for z in zoned.zones) == zoned.n_cylinders
    # block space is contiguous
    for a, b in zip(zoned.zones, zoned.zones[1:]):
        assert b.first_block == a.end_block
    assert zoned.zones[-1].end_block == zoned.n_blocks


def test_outer_zones_are_denser(zoned):
    spts = [z.sectors_per_track for z in zoned.zones]
    assert spts == sorted(spts, reverse=True)
    assert zoned.outer_to_inner_ratio > 1.2


def test_zone_of_boundaries(zoned):
    assert zoned.zone_of(0) is zoned.zones[0]
    last = zoned.zones[-1]
    assert zoned.zone_of(last.first_block) is last
    assert zoned.zone_of(zoned.n_blocks - 1) is last
    with pytest.raises(AddressError):
        zoned.zone_of(zoned.n_blocks)


def test_cylinder_of_at_zone_boundaries(zoned):
    """Edge blocks: first/last of the disk and both sides of every
    zone seam map to in-range, contiguous cylinders."""
    assert zoned.cylinder_of(0) == 0
    assert zoned.cylinder_of(zoned.n_blocks - 1) == zoned.n_cylinders - 1
    for zone in zoned.zones:
        first_cyl = zoned.cylinder_of(zone.first_block)
        last_cyl = zoned.cylinder_of(zone.end_block - 1)
        assert first_cyl == zone.first_cylinder
        assert last_cyl == zone.first_cylinder + zone.n_cylinders - 1
    for before, after in zip(zoned.zones, zoned.zones[1:]):
        # No cylinder gap across the seam despite the density change.
        assert (
            zoned.cylinder_of(after.first_block)
            - zoned.cylinder_of(after.first_block - 1)
            == 1
        )


def test_zoned_defaults_come_from_the_preset():
    """Omitting the ZBR knobs pulls the 36Z15 preset's figures."""
    from repro.config import ULTRASTAR_36Z15

    zoning = ULTRASTAR_36Z15.zoning
    defaulted = ZonedGeometry(DiskParams(capacity_bytes=512 * MB), 4 * KB)
    assert defaulted.n_zones == zoning.n_zones
    assert defaulted.zones[0].sectors_per_track == zoning.outer_sectors
    assert defaulted.zones[-1].sectors_per_track == zoning.inner_sectors


def test_cylinder_monotone_in_block(zoned):
    cylinders = [zoned.cylinder_of(b) for b in range(0, zoned.n_blocks, 997)]
    assert cylinders == sorted(cylinders)
    assert cylinders[-1] < zoned.n_cylinders


def test_outer_transfer_faster_than_inner(zoned):
    outer = zoned.transfer_rate_bytes_ms(0)
    inner = zoned.transfer_rate_bytes_ms(zoned.n_blocks - 1)
    assert outer > inner


def test_average_rate_preserved(zoned):
    """Cylinder-weighted mean zone rate equals the datasheet rate."""
    disk = DiskParams(capacity_bytes=512 * MB)
    weighted = sum(
        zoned.transfer_rate_bytes_ms(z.first_block) * z.n_cylinders
        for z in zoned.zones
    ) / zoned.n_cylinders
    assert weighted == pytest.approx(disk.transfer_rate_bytes_ms, rel=0.02)


def test_transfer_time_splits_across_zones(zoned):
    edge = zoned.zones[0].end_block
    straddling = zoned.transfer_time(edge - 4, 8)
    outer_only = zoned.transfer_time(edge - 8, 8)
    inner_only = zoned.transfer_time(edge, 8)
    assert outer_only < straddling < inner_only


def test_single_zone_uses_average(zoned):
    solo = ZonedGeometry(DiskParams(capacity_bytes=512 * MB), 4 * KB, n_zones=1)
    assert solo.zones[0].sectors_per_track == (504 + 376) // 2


def test_validation():
    with pytest.raises(ConfigError):
        ZonedGeometry(DiskParams(), 4 * KB, n_zones=0)
    with pytest.raises(ConfigError):
        ZonedGeometry(DiskParams(), 4 * KB, outer_sectors=100, inner_sectors=200)
    with pytest.raises(AddressError):
        ZonedGeometry(DiskParams(), 1000)
    with pytest.raises(ConfigError):
        zoned = ZonedGeometry(DiskParams(capacity_bytes=512 * MB), 4 * KB)
        zoned.transfer_time(0, -1)
