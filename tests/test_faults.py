"""Deterministic fault injection: plans, retries, degraded RAID paths."""

import pytest

from repro.array.raid import (
    MirroredArray,
    Raid5Array,
    raid5_parity,
    raid5_reconstruct,
    xor_bytes,
)
from repro.config import ArrayParams, make_config
from repro.controller.commands import DiskCommand
from repro.errors import ConfigError
from repro.faults.injector import (
    DISK_FAILED,
    MEDIA_ERROR,
    TIMEOUT,
    UNRECOVERABLE,
    FaultInjector,
    FaultRuntime,
)
from repro.faults.plan import DiskFaultPlan, FaultPlan
from repro.faults.profile import (
    PROFILES,
    FaultProfile,
    RetryPolicy,
    active_fault_profile,
    fault_profile,
    get_profile,
)
from repro.host.system import System
from repro.units import KB


def _system(small_disk, small_cache, n_disks=2, seed=42):
    config = make_config(
        disk=small_disk,
        cache=small_cache,
        array=ArrayParams(n_disks=n_disks, striping_unit_bytes=16 * KB),
        seed=seed,
    )
    return System(config)


def _plan_for(system, disk_faults, profile=None, seed=0):
    """Hand-built plan: ``disk_faults`` maps disk id -> DiskFaultPlan."""
    n = len(system.controllers)
    disks = tuple(disk_faults.get(d, DiskFaultPlan()) for d in range(n))
    return FaultPlan(
        profile=profile if profile is not None else FaultProfile(name="test"),
        seed=seed,
        disks=disks,
    )


# -- profiles and policy ----------------------------------------------


class TestProfiles:
    def test_named_profiles_resolve(self):
        assert get_profile("none") is None
        for name in ("light", "flaky", "heavy"):
            profile = get_profile(name)
            profile.validate()
            assert profile.any_faults

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigError):
            get_profile("catastrophic")

    def test_context_manager_installs_and_restores(self):
        assert active_fault_profile() is None
        with fault_profile(PROFILES["light"]):
            assert active_fault_profile() is PROFILES["light"]
        assert active_fault_profile() is None

    def test_system_picks_up_active_profile(self, small_disk, small_cache):
        with fault_profile(get_profile("light")):
            system = _system(small_disk, small_cache)
            assert system.faults is not None
            assert system.faults.profile.name == "light"
        assert _system(small_disk, small_cache).faults is None

    def test_bad_rates_rejected(self):
        with pytest.raises(ConfigError):
            FaultProfile(transient_error_rate=1.5).validate()
        with pytest.raises(ConfigError):
            FaultProfile(slow_factor=0.5).validate()


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base_ms=1.0, backoff_cap_ms=5.0)
        assert [policy.backoff_ms(a) for a in (1, 2, 3, 4)] == [
            1.0,
            2.0,
            4.0,
            5.0,
        ]

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_ms(0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1).validate()


# -- plan determinism --------------------------------------------------


class TestFaultPlan:
    def test_same_inputs_same_fingerprint(self):
        profile = get_profile("heavy")
        a = FaultPlan.generate(profile, 8, seed=7)
        b = FaultPlan.generate(profile, 8, seed=7)
        assert a.fingerprint() == b.fingerprint()
        assert a == b

    def test_seed_changes_schedule(self):
        profile = get_profile("heavy")
        a = FaultPlan.generate(profile, 8, seed=7)
        b = FaultPlan.generate(profile, 8, seed=8)
        assert a.fingerprint() != b.fingerprint()

    def test_profile_name_changes_streams(self):
        base = get_profile("flaky")
        renamed = FaultProfile(
            name="flaky2",
            transient_error_rate=base.transient_error_rate,
            slow_op_rate=base.slow_op_rate,
            slow_factor=base.slow_factor,
        )
        a = FaultPlan.generate(base, 4, seed=1)
        b = FaultPlan.generate(renamed, 4, seed=1)
        assert a.fingerprint() != b.fingerprint()

    def test_zero_rates_produce_empty_schedules(self):
        plan = FaultPlan.generate(FaultProfile(name="quiet"), 4, seed=1)
        for disk in plan.disks:
            assert disk.failure_windows == ()
            assert not disk.transient_ops and not disk.slow_ops

    def test_failure_windows_sorted_disjoint_within_horizon(self):
        profile = FaultProfile(
            name="fail", mtbf_ms=5_000.0, repair_ms=500.0, horizon_ms=60_000.0
        )
        plan = FaultPlan.generate(profile, 4, seed=3)
        assert plan.total_failure_windows > 0
        for disk in plan.disks:
            last_end = -1.0
            for start, end in disk.failure_windows:
                assert start > last_end
                assert end == start + profile.repair_ms
                assert start < profile.horizon_ms
                last_end = end

    def test_failed_at_and_failed_ms(self):
        disk = DiskFaultPlan(failure_windows=((10.0, 20.0), (50.0, 60.0)))
        assert not disk.failed_at(5.0)
        assert disk.failed_at(10.0)
        assert disk.failed_at(19.9)
        assert not disk.failed_at(20.0)
        assert disk.failed_ms_until(15.0) == 5.0
        assert disk.failed_ms_until(100.0) == 20.0

    def test_transient_rate_is_roughly_honoured(self):
        profile = FaultProfile(
            name="rate", transient_error_rate=0.05, horizon_ops=20_000
        )
        plan = FaultPlan.generate(profile, 1, seed=11)
        count = len(plan.disks[0].transient_ops)
        assert 0.03 * 20_000 < count < 0.07 * 20_000


class TestFaultInjector:
    def test_ordinals_drive_outcomes(self):
        disk_plan = DiskFaultPlan(
            transient_ops=frozenset({1}), slow_ops=frozenset({2})
        )
        injector = FaultInjector(0, disk_plan)
        assert injector.media_outcome(10.0, 4.0) == (0.0, None)
        assert injector.media_outcome(10.0, 4.0) == (0.0, MEDIA_ERROR)
        assert injector.media_outcome(10.0, 4.0) == (30.0, None)
        assert injector.transient_injected == 1
        assert injector.slow_injected == 1


# -- controller retry / timeout / offline ------------------------------


class TestControllerFaults:
    def _read(self, system, disk=0, start=0, n=4):
        done = []
        cmd = DiskCommand(disk, start, n, False, -1, done.append)
        system.array.submit_command(cmd)
        system.sim.run()
        assert done, "command never completed"
        return cmd

    def test_transient_error_is_retried_and_recovers(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache)
        plan = _plan_for(
            system, {0: DiskFaultPlan(transient_ops=frozenset({0}))}
        )
        FaultRuntime.attach(system, plan, RetryPolicy())
        cmd = self._read(system)
        stats = system.controllers[0].stats
        assert cmd.error is None
        assert stats.media_errors == 1
        assert stats.media_retries == 1
        assert stats.failed_commands == 0

    def test_retry_exhaustion_fails_the_command(self, small_disk, small_cache):
        system = _system(small_disk, small_cache)
        plan = _plan_for(
            system, {0: DiskFaultPlan(transient_ops=frozenset(range(50)))}
        )
        FaultRuntime.attach(system, plan, RetryPolicy(max_retries=2))
        cmd = self._read(system)
        stats = system.controllers[0].stats
        assert cmd.error == MEDIA_ERROR
        assert stats.media_retries == 2
        assert stats.failed_commands == 1

    def test_slow_op_past_deadline_counts_as_timeout(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache)
        plan = _plan_for(system, {})
        # Every mechanical op takes >> 1 us, so each completion blows
        # the deadline; with no retries the read fails as a timeout.
        FaultRuntime.attach(
            system, plan, RetryPolicy(max_retries=0, command_timeout_ms=0.001)
        )
        cmd = self._read(system)
        stats = system.controllers[0].stats
        assert cmd.error == TIMEOUT
        assert stats.command_timeouts >= 1
        assert stats.failed_commands == 1

    def test_offline_controller_fails_fast(self, small_disk, small_cache):
        system = _system(small_disk, small_cache)
        plan = _plan_for(
            system,
            {0: DiskFaultPlan(failure_windows=((0.0, 1e9),))},
        )
        FaultRuntime.attach(system, plan, RetryPolicy())
        system.sim.run(until=1.0)  # fire the failure transition
        assert system.controllers[0].offline
        cmd = self._read(system)
        assert cmd.error == DISK_FAILED
        assert system.controllers[0].stats.failed_commands == 1

    def test_summary_aggregates_ledger(self, small_disk, small_cache):
        system = _system(small_disk, small_cache)
        plan = _plan_for(
            system, {0: DiskFaultPlan(transient_ops=frozenset({0}))}
        )
        runtime = FaultRuntime.attach(system, plan, RetryPolicy())
        self._read(system)
        summary = runtime.summary(1_000.0, system.array.controller_stats())
        assert summary.transient_errors == 1
        assert summary.media_retries == 1
        assert summary.availability == 1.0

    def test_availability_reflects_failed_disk_time(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache)
        plan = _plan_for(
            system,
            {0: DiskFaultPlan(failure_windows=((0.0, 500.0),))},
        )
        runtime = FaultRuntime.attach(system, plan, RetryPolicy())
        system.sim.run()
        summary = runtime.summary(1_000.0, system.array.controller_stats())
        assert summary.disk_failures == 1
        assert summary.failed_disk_ms == 500.0
        # 500 ms lost of 2 disks x 1000 ms
        assert summary.availability == pytest.approx(0.75)


# -- RAID-1 degraded paths ---------------------------------------------


class TestMirrorDegraded:
    def test_reads_avoid_a_failed_replica(self, small_disk, small_cache):
        system = _system(small_disk, small_cache, n_disks=4)
        plan = _plan_for(
            system,
            {0: DiskFaultPlan(failure_windows=((0.0, 1e9),))},
            profile=FaultProfile(name="test", rebuild_span_blocks=0),
        )
        runtime = FaultRuntime.attach(system, plan, RetryPolicy())
        mirror = MirroredArray(system.array, faults=runtime)
        system.sim.run(until=1.0)
        commands = mirror.submit_logical(0, 4)
        system.sim.run()
        assert [c.disk_id for c in commands] == [2]  # partner, not disk 0
        assert commands[0].error is None

    def test_failed_primary_read_falls_back_to_partner(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache, n_disks=4)
        plan = _plan_for(
            system, {0: DiskFaultPlan(transient_ops=frozenset(range(50)))}
        )
        runtime = FaultRuntime.attach(system, plan, RetryPolicy(max_retries=0))
        mirror = MirroredArray(system.array, faults=runtime)
        settled = []
        mirror._issue_read_with_fallback(
            DiskCommand(0, 0, 4, False, -1), settled.append
        )
        system.sim.run()
        assert len(settled) == 1
        assert settled[0].error is None
        assert settled[0].disk_id == 2
        assert mirror.degraded_reads == 1
        assert runtime.degraded_reads == 1

    def test_both_replicas_lost_is_unrecoverable(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache, n_disks=4)
        bad = DiskFaultPlan(transient_ops=frozenset(range(50)))
        plan = _plan_for(system, {0: bad, 2: bad})
        runtime = FaultRuntime.attach(system, plan, RetryPolicy(max_retries=0))
        mirror = MirroredArray(system.array, faults=runtime)
        done = []
        cmd = DiskCommand(0, 0, 4, False, -1, done.append)
        mirror.submit_command(cmd)
        system.sim.run()
        assert done and cmd.error == UNRECOVERABLE
        assert mirror.unrecovered_reads == 1

    def test_recovery_starts_a_rebuild_that_copies_blocks(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache, n_disks=4)
        profile = FaultProfile(
            name="rebuild", rebuild_span_blocks=128, rebuild_chunk_blocks=32
        )
        plan = _plan_for(
            system,
            {0: DiskFaultPlan(failure_windows=((0.0, 5.0),))},
            profile=profile,
        )
        runtime = FaultRuntime.attach(system, plan, RetryPolicy())
        mirror = MirroredArray(system.array, faults=runtime)
        system.sim.run()
        assert len(mirror.rebuilds) == 1
        stream = mirror.rebuilds[0]
        assert stream.completed
        assert stream.blocks_copied == 128
        assert runtime.rebuild_blocks_copied == 128
        # the copy went through the ordinary media path on both sides
        assert system.controllers[2].stats.media_blocks_read >= 128
        assert system.controllers[0].stats.media_blocks_written >= 128


# -- RAID-5 ------------------------------------------------------------


class TestRaid5Math:
    def test_xor_roundtrip(self):
        a, b, c = b"\x01\x02", b"\x10\x20", b"\xff\x00"
        parity = raid5_parity([a, b, c])
        assert raid5_reconstruct([a, b, parity]) == c
        assert raid5_reconstruct([a, c, parity]) == b
        assert xor_bytes(a, a) == b"\x00\x00"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            xor_bytes(b"\x01", b"\x01\x02")

    def test_parity_rotates_across_all_disks(self, small_disk, small_cache):
        system = _system(small_disk, small_cache, n_disks=4)
        raid = Raid5Array(system.array)
        parity_disks = [raid.parity_disk(row) for row in range(4)]
        assert sorted(parity_disks) == [0, 1, 2, 3]

    def test_data_never_lands_on_its_rows_parity_disk(
        self, small_disk, small_cache
    ):
        system = _system(small_disk, small_cache, n_disks=4)
        raid = Raid5Array(system.array)
        for lb in range(0, raid.unit * 12, raid.unit):
            disk, phys = raid.locate(lb)
            row = phys // raid.unit
            assert disk != raid.parity_disk(row)

    def test_needs_three_disks(self, small_disk, small_cache):
        system = _system(small_disk, small_cache, n_disks=2)
        with pytest.raises(ConfigError):
            Raid5Array(system.array)

    def test_capacity_is_n_minus_one_over_n(self, small_disk, small_cache):
        system = _system(small_disk, small_cache, n_disks=4)
        raid = Raid5Array(system.array)
        assert raid.logical_capacity_blocks == (
            system.striping.total_blocks * 3 // 4
        )


class TestRaid5Degraded:
    def _degraded_setup(self, small_disk, small_cache, windows):
        system = _system(small_disk, small_cache, n_disks=4)
        plan = _plan_for(
            system,
            {d: DiskFaultPlan(failure_windows=w) for d, w in windows.items()},
            profile=FaultProfile(name="test", rebuild_span_blocks=0),
        )
        runtime = FaultRuntime.attach(system, plan, RetryPolicy())
        raid = Raid5Array(system.array, faults=runtime)
        system.sim.run(until=1.0)
        return system, raid

    def test_write_hits_data_and_parity_disks(self, small_disk, small_cache):
        system = _system(small_disk, small_cache, n_disks=4)
        raid = Raid5Array(system.array)
        commands = raid.submit_logical(0, 4, is_write=True)
        system.sim.run()
        data_disk, _ = raid.locate(0)
        assert sorted(c.disk_id for c in commands) == sorted(
            [data_disk, raid.parity_disk(0)]
        )

    def test_lost_disk_read_reconstructs_from_survivors(
        self, small_disk, small_cache
    ):
        system, raid = self._degraded_setup(
            small_disk, small_cache, {0: ((0.0, 1e9),)}
        )
        # a logical block whose home is the failed disk
        lb = next(
            lb
            for lb in range(0, raid.unit * 8, raid.unit)
            if raid.locate(lb)[0] == 0
        )
        done = []
        commands = raid.submit_logical(lb, 4, on_complete=lambda: done.append(1))
        system.sim.run(until=500.0)
        assert done == [1]
        assert sorted(c.disk_id for c in commands) == [1, 2, 3]
        assert raid.degraded_reads == 1
        assert raid.unrecovered_reads == 0

    def test_two_lost_members_is_data_loss(self, small_disk, small_cache):
        system, raid = self._degraded_setup(
            small_disk,
            small_cache,
            {0: ((0.0, 1e9),), 1: ((0.0, 1e9),)},
        )
        lb = next(
            lb
            for lb in range(0, raid.unit * 8, raid.unit)
            if raid.locate(lb)[0] == 0
        )
        raid.submit_logical(lb, 4)
        system.sim.run(until=500.0)
        assert raid.unrecovered_reads == 1
        assert raid.degraded_reads == 0

    def test_degraded_write_skips_the_lost_member(
        self, small_disk, small_cache
    ):
        system, raid = self._degraded_setup(
            small_disk, small_cache, {0: ((0.0, 1e9),)}
        )
        lb = next(
            lb
            for lb in range(0, raid.unit * 8, raid.unit)
            if raid.locate(lb)[0] == 0
        )
        commands = raid.submit_logical(lb, 4, is_write=True)
        system.sim.run(until=500.0)
        row = raid.locate(lb)[1] // raid.unit
        assert [c.disk_id for c in commands] == [raid.parity_disk(row)]
        assert all(c.error is None for c in commands)


# -- determinism across the parallel runner ----------------------------


class TestFaultSweepDeterminism:
    def test_serial_and_parallel_availability_identical(self):
        from repro.experiments.parallel import sweep_experiment

        serial, _ = sweep_experiment(
            "availability", scale=0.05, seed=5, jobs=1, values=[0.0, 0.5]
        )
        parallel, _ = sweep_experiment(
            "availability", scale=0.05, seed=5, jobs=2, values=[0.0, 0.5]
        )
        assert serial.to_dict() == parallel.to_dict()
        # the faulted cell actually exercised the fault machinery
        retries = serial.series["retries"]
        degraded = serial.series["degraded"]
        assert retries[0] == 0 and degraded[0] == 0  # mtbf=0 baseline
        assert retries[1] + degraded[1] > 0

    def test_faults_flag_joins_cache_key_only_when_set(self):
        from repro.experiments.cache import ResultCache
        from repro.experiments.parallel import Cell

        plain = Cell(exp="fig01", index=0, axis="frag_points", value=1)
        faulted = Cell(
            exp="fig01", index=0, axis="frag_points", value=1, faults="flaky"
        )
        assert "faults" not in plain.cache_payload()
        assert faulted.cache_payload()["faults"] == "flaky"
        assert ResultCache.key_for(plain.cache_payload()) != ResultCache.key_for(
            faulted.cache_payload()
        )

    def test_expand_cells_normalises_none_and_validates(self):
        from repro.experiments.parallel import expand_cells

        for cell in expand_cells("fig01", faults="none"):
            assert cell.faults is None
        for cell in expand_cells("fig01", faults="heavy"):
            assert cell.faults == "heavy"
        with pytest.raises(ConfigError):
            expand_cells("fig01", faults="bogus")

    def test_worker_installs_profile_for_its_cell(self):
        from repro.experiments.parallel import Cell, run_cell

        cell = Cell(
            exp="availability",
            index=0,
            axis="mtbf_s",
            value=0.0,
            scale=0.05,
            seed=5,
            faults="light",
        )
        index, _, data = run_cell(cell)
        assert index == 0
        assert active_fault_profile() is None  # restored afterwards
