"""The example scripts: importable, and their helpers behave."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "web_server_study",
        "hdc_planning",
        "custom_drive",
        "trace_anatomy",
        "replay_trace",
    ],
)
def test_example_imports_cleanly(name):
    module = load_example(name)
    assert callable(module.main)


def test_custom_drive_fabrication_recovers_curve():
    import numpy as np

    from repro.config import SeekParams
    from repro.mechanics.seek import fit_seek_params

    module = load_example("custom_drive")
    true = SeekParams(alpha=0.75, beta=0.030, gamma=1.20, delta=0.00042, theta=900)
    distances, times = module.fabricate_measurements(
        true, np.random.default_rng(0)
    )
    fitted = fit_seek_params(distances, times, theta=900)
    assert fitted.alpha == pytest.approx(true.alpha, rel=0.15)
    assert fitted.delta == pytest.approx(true.delta, rel=0.15)
