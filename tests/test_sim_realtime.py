"""Real-time pacing mode: wall-clock slaving, external-event inbox."""

import math
import threading
import time

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestRunRealtime:
    def test_fires_in_time_order_and_returns_on_stop(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, sim.stop)
        final = sim.run_realtime(accel=math.inf)
        assert order == ["a", "b"]
        assert final == 3.0
        assert sim.events_fired == 3

    def test_accel_inf_never_sleeps(self):
        """A far-future event must not cost far-future wall time."""
        sim = Simulator()
        sim.schedule(60_000.0, sim.stop)  # one simulated minute away
        t0 = time.monotonic()
        sim.run_realtime(accel=math.inf)
        assert time.monotonic() - t0 < 5.0
        assert sim.now == 60_000.0

    def test_finite_accel_paces_against_wall_clock(self):
        """200 simulated ms at accel=10 must take >= ~20 wall ms."""
        sim = Simulator()
        sim.schedule(200.0, sim.stop)
        t0 = time.monotonic()
        sim.run_realtime(accel=10.0)
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.015  # generous margin below the exact 0.020

    def test_nonpositive_accel_rejected(self):
        sim = Simulator()
        for bad in (0.0, -1.0):
            with pytest.raises(SimulationError, match="accel"):
                sim.run_realtime(accel=bad)

    def test_not_reentrant(self):
        sim = Simulator()

        def inner():
            with pytest.raises(SimulationError, match="not reentrant"):
                sim.run_realtime()
            sim.stop()

        sim.schedule(0.0, inner)
        sim.run_realtime(accel=math.inf)

    def test_post_injects_from_another_thread(self):
        """An idle loop (empty queue) admits posted work promptly."""
        sim = Simulator()
        seen = []

        def worker():
            time.sleep(0.02)
            sim.post(seen.append, "injected")
            sim.post(sim.stop)

        thread = threading.Thread(target=worker)
        thread.start()
        sim.run_realtime(accel=math.inf)
        thread.join()
        assert seen == ["injected"]

    def test_posted_work_can_schedule_followups(self):
        """Injected callbacks participate in normal event scheduling."""
        sim = Simulator()
        hops = []

        def chain(n):
            hops.append(sim.now)
            if n:
                sim.call_after(1.0, chain, n - 1)
            else:
                sim.stop()

        threading.Thread(target=lambda: sim.post(chain, 3)).start()
        sim.run_realtime(accel=math.inf)
        assert len(hops) == 4
        assert hops == sorted(hops)
        assert hops[-1] - hops[0] == 3.0

    def test_idle_clock_tracks_wall_time_under_finite_accel(self):
        """A request injected after a wall delay arrives at a simulated
        time that reflects that delay (clock slaving while idle)."""
        sim = Simulator()
        arrival = []

        def worker():
            time.sleep(0.03)
            sim.post(lambda: arrival.append(sim.now))
            sim.post(sim.stop)

        thread = threading.Thread(target=worker)
        thread.start()
        sim.run_realtime(accel=1000.0)  # 1000 sim ms per wall ms
        thread.join()
        # ~30 wall ms at accel 1000 => >= ~10000 simulated ms even with
        # scheduler jitter; exactness is not the contract, slaving is.
        assert arrival and arrival[0] > 1000.0

    def test_clock_never_advances_past_pending_events_on_injection(self):
        """Inbox admission clamps the clock to the next scheduled event,
        so injected work cannot make the engine schedule into the past."""
        sim = Simulator()
        seen = []
        sim.schedule(5.0, seen.append, "timer")  # far future at accel=1e-9

        def worker():
            time.sleep(0.02)
            sim.post(lambda: seen.append(("injected", sim.now)))
            sim.post(sim.stop)

        thread = threading.Thread(target=worker)
        thread.start()
        # Slow enough that the 5-ms timer's wall deadline (5000 s away)
        # never arrives: only the injected events run.
        sim.run_realtime(accel=1e-6)
        thread.join()
        assert seen == [("injected", sim.now)]
        assert sim.now <= 5.0
        assert sim.pending == 1  # the timer is still queued

    def test_stop_from_another_thread_wakes_idle_loop(self):
        sim = Simulator()
        thread = threading.Thread(target=lambda: (time.sleep(0.02), sim.stop()))
        thread.start()
        t0 = time.monotonic()
        sim.run_realtime(accel=1.0)  # empty queue: pure idle
        thread.join()
        assert time.monotonic() - t0 < 5.0

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "cancelled")
        sim.schedule(2.0, fired.append, "kept")
        sim.schedule(2.0, sim.stop)
        sim.cancel(handle)
        sim.run_realtime(accel=math.inf)
        assert fired == ["kept"]


class TestStickyStop:
    def test_stop_before_run_is_consumed_by_next_run(self):
        """Regression: run() used to reset the flag on entry, silently
        dropping a stop requested between runs (the server-shutdown
        path: a signal handler stops an engine that has not started)."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.stop()
        sim.run()
        assert fired == []  # the pending stop was honoured...
        assert sim.pending == 1
        sim.run()  # ...and consumed: the next run proceeds normally
        assert fired == ["x"]

    def test_stop_before_run_realtime_is_consumed(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.stop()
        sim.run_realtime(accel=math.inf)
        assert fired == []
        sim.schedule(1.5, sim.stop)
        sim.run_realtime(accel=math.inf)
        assert fired == ["x"]

    def test_stop_before_run_until_is_consumed(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.stop()
        assert sim.run(until=5.0) == 0.0  # no progress: stop honoured
        sim.run(until=5.0)
        assert fired == ["x"]
        assert sim.now == 5.0

    def test_stop_inside_run_does_not_leak_into_next_run(self):
        """The existing contract: a stop consumed mid-run is gone."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, fired.append, "after")
        sim.run()
        assert fired == []
        sim.run()
        assert fired == ["after"]
