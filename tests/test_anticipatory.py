"""Anticipatory dispatch (extension; paper ref. [15])."""

import pytest

from repro.bus.scsi import ScsiBus
from repro.cache.block import BlockCache
from repro.config import BusParams, DiskParams, make_config, ArrayParams
from repro.controller.commands import DiskCommand
from repro.controller.controller import DiskController
from repro.disk.drive import DiskDrive
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.mechanics.service import ServiceTimeModel
from repro.readahead.none import NoReadAhead
from repro.scheduling.fcfs import FCFSScheduler
from repro.scheduling.look import LookScheduler
from repro.scheduling.sstf import SSTFScheduler
from repro.scheduling.cscan import CScanScheduler
from repro.sim.engine import Simulator
from repro.units import KB, MB
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


class TestSchedulerPeek:
    @pytest.mark.parametrize(
        "cls", [FCFSScheduler, LookScheduler, SSTFScheduler, CScanScheduler]
    )
    def test_peek_matches_pop_and_is_pure(self, cls):
        sched = cls()
        for cyl in (50, 10, 70, 30, 50):
            sched.push(cyl, f"p{cyl}", 0.0)
        before = len(sched)
        peeked = sched.peek(40)
        assert len(sched) == before  # no removal
        assert sched.peek(40) is peeked  # no state mutation
        popped = sched.pop(40)
        assert popped is peeked

    @pytest.mark.parametrize(
        "cls", [FCFSScheduler, LookScheduler, SSTFScheduler, CScanScheduler]
    )
    def test_peek_empty_is_none(self, cls):
        assert cls().peek(0) is None


def make_controller(wait_ms):
    sim = Simulator()
    disk = DiskParams(capacity_bytes=64 * MB)
    service = ServiceTimeModel(disk, 4 * KB, deterministic_rotation=True)
    drive = DiskDrive(0, sim, service)
    controller = DiskController(
        disk_id=0,
        sim=sim,
        drive=drive,
        scheduler=FCFSScheduler(),
        cache=BlockCache(64),
        readahead=NoReadAhead(),
        bus=ScsiBus(sim, BusParams()),
        block_size=4 * KB,
        anticipatory_wait_ms=wait_ms,
    )
    return sim, controller


def run_two_stream_scenario(wait_ms):
    """Stream 0 reads two nearby runs back to back; stream 1 reads far
    away. The far request is queued when stream 0's first read
    completes — anticipation should let stream 0's follow-up jump it.
    """
    sim, controller = make_controller(wait_ms)
    order = []
    far = controller.drive.geometry.n_blocks - 8

    def submit(start, stream, tag):
        controller.submit(
            DiskCommand(
                0, start, 2, stream_id=stream,
                on_complete=lambda c: order.append(tag),
            )
        )

    submit(100, 0, "near1")
    submit(far, 1, "far")

    # stream 0's sequential follow-up arrives shortly after near1's
    # media completes (bus delivery + host turnaround)
    def follow_up():
        submit(102, 0, "near2")

    # near1's media time ~ seek0+rot2+transfer+overhead ~ 2.35 ms;
    # schedule the follow-up just after its completion.
    sim.schedule(2.6, follow_up)
    sim.run()
    return order, controller


class TestAnticipatoryDispatch:
    def test_disabled_serves_far_request_first(self):
        order, controller = run_two_stream_scenario(0.0)
        assert order == ["near1", "far", "near2"]
        assert controller.stats.anticipation_waits == 0

    def test_enabled_waits_for_the_sequential_reader(self):
        order, controller = run_two_stream_scenario(1.0)
        assert order == ["near1", "near2", "far"]
        assert controller.stats.anticipation_waits >= 1

    def test_anticipation_reduces_total_seek(self):
        _, without = run_two_stream_scenario(0.0)
        _, with_ant = run_two_stream_scenario(1.0)
        assert (
            with_ant.drive.seek_time_total < without.drive.seek_time_total
        )

    def test_window_expiry_dispatches_other_stream(self):
        """If the awaited request never comes, the far one proceeds."""
        sim, controller = make_controller(wait_ms=0.5)
        order = []
        far = controller.drive.geometry.n_blocks - 8
        controller.submit(
            DiskCommand(0, 100, 2, stream_id=0,
                        on_complete=lambda c: order.append("near")))
        controller.submit(
            DiskCommand(0, far, 2, stream_id=1,
                        on_complete=lambda c: order.append("far")))
        sim.run()
        assert order == ["near", "far"]

    def test_config_knob_flows_to_controllers(self, small_disk, small_cache):
        config = make_config(
            disk=small_disk,
            cache=small_cache,
            array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
            anticipatory_wait_ms=0.7,
        )
        system = System(config)
        assert system.controllers[0].anticipatory_wait_ms == 0.7

    def test_replay_completes_with_anticipation(self, small_disk, small_cache):
        config = make_config(
            disk=small_disk,
            cache=small_cache,
            array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
            anticipatory_wait_ms=0.5,
        )
        system = System(config)
        records = [DiskAccess([(i * 8, 4)]) for i in range(40)]
        trace = Trace(records, TraceMeta(n_streams=4, coalesce_prob=0.5))
        driver = ReplayDriver(system, trace)
        assert driver.run() > 0
        assert driver.records_completed == 40

    def test_negative_wait_rejected(self, small_disk, small_cache):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_config(anticipatory_wait_ms=-1.0)
