"""Experiment plumbing: techniques, runner, series containers, CLI."""


import pytest

from repro.config import (
    CacheOrganization,
    ReadAheadKind,
    ultrastar_36z15_config,
)
from repro.experiments.base import SeriesResult, parse_scale, scaled_count
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import EXPERIMENTS, RUNNERS
from repro.experiments.runner import TechniqueRunner
from repro.experiments.techniques import (
    ALL_TECHNIQUES,
    BLOCK,
    FOR,
    FOR_HDC,
    NORA,
    SEGM,
    SEGM_HDC,
    technique_config,
)
from repro.units import KB, MB
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload


@pytest.fixture(scope="module")
def tiny_runner():
    spec = SyntheticSpec(n_requests=150, n_files=300, file_size_bytes=16 * KB)
    layout, trace = SyntheticWorkload(spec).build()
    return TechniqueRunner(layout, trace)


class TestTechniques:
    def test_registry_covers_paper_systems(self):
        assert set(ALL_TECHNIQUES) == {
            "segm", "block", "nora", "for", "segm+hdc", "for+hdc"
        }

    def test_segm_config(self):
        config = technique_config(ultrastar_36z15_config(), SEGM)
        assert config.cache.organization is CacheOrganization.SEGMENT
        assert config.readahead is ReadAheadKind.BLIND
        assert config.hdc_bytes == 0

    def test_for_config(self):
        config = technique_config(ultrastar_36z15_config(), FOR)
        assert config.cache.organization is CacheOrganization.BLOCK
        assert config.readahead is ReadAheadKind.FILE_ORIENTED

    def test_nora_config(self):
        config = technique_config(ultrastar_36z15_config(), NORA)
        assert config.readahead is ReadAheadKind.NONE

    def test_hdc_bytes_only_applied_when_enabled(self):
        base = ultrastar_36z15_config()
        assert technique_config(base, SEGM, hdc_bytes=2 * MB).hdc_bytes == 0
        assert technique_config(base, SEGM_HDC, hdc_bytes=2 * MB).hdc_bytes == 2 * MB

    def test_with_hdc_derivation(self):
        assert SEGM.with_hdc().key == "segm+hdc"
        assert FOR.with_hdc().label == "FOR+HDC"


class TestTechniqueRunner:
    def test_all_techniques_run_to_completion(self, tiny_runner):
        config = ultrastar_36z15_config()
        for tech in (SEGM, BLOCK, NORA, FOR):
            result = tiny_runner.run(config, tech)
            assert result.records == 150
            assert result.io_time_ms > 0

    def test_hdc_techniques_pin_and_flush(self, tiny_runner):
        config = ultrastar_36z15_config()
        result = tiny_runner.run(config, FOR_HDC, hdc_bytes=2 * MB)
        assert result.controller.pins_loaded > 0
        assert result.controller.flush_commands >= 8  # one per disk

    def test_hdc_hit_rate_positive_with_perfect_knowledge(self, tiny_runner):
        config = ultrastar_36z15_config()
        result = tiny_runner.run(config, SEGM_HDC, hdc_bytes=2 * MB)
        assert result.hdc_hit_rate > 0

    def test_pin_fraction_shrinks_pin_set(self, tiny_runner):
        config = ultrastar_36z15_config()
        full = tiny_runner.run(config, SEGM_HDC, hdc_bytes=2 * MB)
        frac = tiny_runner.run(
            config, SEGM_HDC, hdc_bytes=2 * MB, hdc_pin_fraction=0.1
        )
        assert frac.controller.pins_loaded < full.controller.pins_loaded

    def test_bitmaps_memoised_per_striping(self, tiny_runner):
        config = ultrastar_36z15_config()
        first = tiny_runner.bitmaps_for(config)
        second = tiny_runner.bitmaps_for(config)
        assert first is second

    def test_profile_memoised(self, tiny_runner):
        assert tiny_runner.profile() is tiny_runner.profile()

    def test_same_workload_same_randomness(self, tiny_runner):
        config = ultrastar_36z15_config()
        a = tiny_runner.run(config, SEGM)
        b = tiny_runner.run(config, SEGM)
        assert a.io_time_ms == pytest.approx(b.io_time_ms)


class TestSeriesResult:
    def test_add_and_get(self):
        series = SeriesResult("x", "t", "k", x_values=[1, 2])
        series.add_point("a", 1.0)
        series.add_point("a", 2.0)
        assert series.get("a") == [1.0, 2.0]

    def test_to_text_contains_all(self):
        series = SeriesResult("fig00", "demo", "x", x_values=[1])
        series.add_point("y", 0.5)
        series.notes.append("hello")
        text = series.to_text()
        assert "fig00" in text and "0.500" in text and "hello" in text

    def test_missing_points_render_nan(self):
        series = SeriesResult("x", "t", "k", x_values=[1, 2])
        series.add_point("a", 1.0)
        assert "nan" in series.to_text()

    def test_json_roundtrip(self, tmp_path):
        series = SeriesResult("figRT", "roundtrip", "x", x_values=[1, 2])
        series.add_point("y", 0.25)
        series.add_point("y", 0.5)
        series.notes.append("a note")
        path = tmp_path / "result.json"
        series.save_json(path)
        loaded = SeriesResult.load_json(path)
        assert loaded.exp_id == "figRT"
        assert loaded.x_values == [1, 2]
        assert loaded.get("y") == [0.25, 0.5]
        assert loaded.notes == ["a note"]

    def test_scaled_count(self):
        assert scaled_count(1000, 0.5) == 500
        assert scaled_count(10, 0.0001, minimum=3) == 3

    def test_parse_scale(self):
        assert parse_scale(["--scale", "0.25"], 1.0) == 0.25
        assert parse_scale([], 0.3) == 0.3
        assert parse_scale(None, 0.3) == 0.3
        assert parse_scale(["--scale"], 0.3) == 0.3


class TestRegistryAndCli:
    def test_registry_covers_every_paper_artifact(self):
        expected = {f"fig{i:02d}" for i in range(1, 13)}
        expected |= {"table1", "table2", "validation", "ext_frag"}
        expected |= {"availability"}  # fault-injection extension
        expected |= {"trace_replay"}  # real-trace ingestion extension
        expected |= {"scale_sweep"}  # client-population scale extension
        expected |= {"service_demo"}  # live block-service extension
        expected |= {"hybrid_array"}  # heterogeneous-array extension
        assert set(EXPERIMENTS) == expected
        assert set(RUNNERS) == expected

    def test_cli_help(self, capsys):
        assert cli_main([]) == 0
        assert "fig03" in capsys.readouterr().out

    def test_cli_unknown_experiment(self, capsys):
        assert cli_main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_cli_runs_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "Number of disks" in capsys.readouterr().out

    def test_cli_runs_validation(self, capsys):
        assert cli_main(["validation", "--scale", "0.2"]) == 0
        assert "error_frac" in capsys.readouterr().out

    def test_cli_report_flag_writes_perfkit_page(self, tmp_path, capsys):
        out = tmp_path / "fig01.md"
        assert cli_main(["fig01", "--report", str(out)]) == 0
        md = out.read_text(encoding="utf-8")
        assert md.startswith("# perfkit report — fig01")
        assert "## Sparklines" in md
        assert str(out) in capsys.readouterr().err
