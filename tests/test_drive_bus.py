"""Disk drive media loop and SCSI bus model."""

import pytest

from repro.bus.scsi import ScsiBus
from repro.config import BusParams, DiskParams
from repro.disk.drive import DiskDrive
from repro.errors import SimulationError
from repro.mechanics.service import ServiceTimeModel
from repro.sim.engine import Simulator
from repro.units import KB, MB


def make_drive(sim=None):
    sim = sim or Simulator()
    disk = DiskParams(capacity_bytes=64 * MB)
    service = ServiceTimeModel(disk, 4 * KB, deterministic_rotation=True)
    return sim, DiskDrive(0, sim, service)


class TestDrive:
    def test_execute_updates_head_and_accounting(self):
        sim, drive = make_drive()
        done = []
        duration = drive.execute(100, 4, False, lambda: done.append(sim.now))
        assert drive.busy
        sim.run()
        assert done == [pytest.approx(duration)]
        assert not drive.busy
        assert drive.head_block == 103
        assert drive.operations == 1
        assert drive.blocks_transferred == 4
        assert drive.busy_time == pytest.approx(duration)

    def test_busy_drive_rejects_second_op(self):
        sim, drive = make_drive()
        drive.execute(0, 1, False, lambda: None)
        with pytest.raises(SimulationError):
            drive.execute(10, 1, False, lambda: None)

    def test_bounds_checked(self):
        _sim, drive = make_drive()
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            drive.execute(drive.geometry.n_blocks, 1, False, lambda: None)
        with pytest.raises(SimulationError):
            drive.execute(drive.geometry.n_blocks - 1, 5, False, lambda: None)
        with pytest.raises(SimulationError):
            drive.execute(0, 0, False, lambda: None)

    def test_longer_seek_takes_longer(self):
        sim, drive = make_drive()
        t_near = drive.execute(0, 1, False, lambda: None)
        sim.run()
        drive.head_block = 0
        t_far = drive.execute(drive.geometry.n_blocks - 2, 1, False, lambda: None)
        assert t_far > t_near

    def test_utilization(self):
        sim, drive = make_drive()
        duration = drive.execute(0, 4, False, lambda: None)
        sim.run()
        sim.schedule(duration, lambda: None)  # idle for the same span
        sim.run()
        assert drive.utilization(sim.now) == pytest.approx(0.5)

    def test_seek_time_accumulated(self):
        sim, drive = make_drive()
        drive.execute(drive.geometry.blocks_per_cylinder * 10, 1, False, lambda: None)
        sim.run()
        assert drive.seek_time_total > 0


class TestBus:
    def test_transfer_time_is_bytes_over_rate_plus_overhead(self):
        sim = Simulator()
        bus = ScsiBus(sim, BusParams(bandwidth_mb_s=160, per_command_overhead_ms=0.02))
        done = []
        bus.transfer(160_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0 + 0.02)]

    def test_contention_serializes(self):
        sim = Simulator()
        bus = ScsiBus(sim, BusParams(bandwidth_mb_s=160, per_command_overhead_ms=0.0))
        done = []
        bus.transfer(160_000, lambda: done.append(sim.now))
        bus.transfer(160_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_counters(self):
        sim = Simulator()
        bus = ScsiBus(sim, BusParams())
        bus.transfer(1000, lambda: None)
        bus.transfer(2000, lambda: None)
        sim.run()
        assert bus.transfers == 2
        assert bus.bytes_transferred == 3000

    def test_utilization_reported(self):
        sim = Simulator()
        bus = ScsiBus(sim, BusParams(per_command_overhead_ms=0.0))
        bus.transfer(160_000, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert bus.utilization(sim.now) == pytest.approx(0.5)
