"""Trace statistics and the Zipf fit."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.stats import (
    compute_trace_statistics,
    fit_zipf_alpha,
)
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


def make_trace(records):
    return Trace(records, TraceMeta())


class TestFitZipf:
    def test_recovers_known_alpha(self):
        alpha = 0.7
        ranks = np.arange(1, 2000)
        counts = list((1e6 * ranks ** (-alpha)).astype(int))
        assert fit_zipf_alpha(counts) == pytest.approx(alpha, abs=0.05)

    def test_uniform_fits_zero(self):
        assert fit_zipf_alpha([10] * 500) == pytest.approx(0.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            fit_zipf_alpha([])

    def test_degenerate_returns_zero(self):
        assert fit_zipf_alpha([5]) == 0.0


class TestComputeStatistics:
    def test_basic_counters(self):
        trace = make_trace(
            [
                DiskAccess([(0, 4)]),
                DiskAccess([(4, 2)], is_write=True),
                DiskAccess([(0, 4)]),
            ]
        )
        stats = compute_trace_statistics(trace)
        assert stats.n_records == 3
        assert stats.n_writes == 1
        assert stats.write_fraction == pytest.approx(1 / 3)
        assert stats.total_blocks == 10
        assert stats.distinct_blocks == 6
        assert stats.hottest_block_count == 2
        assert stats.max_record_blocks == 4
        assert stats.size_histogram == {4: 2, 2: 1}

    def test_sequentiality_detection(self):
        trace = make_trace(
            [DiskAccess([(0, 4)]), DiskAccess([(4, 4)]), DiskAccess([(100, 1)])]
        )
        stats = compute_trace_statistics(trace)
        assert stats.inter_record_sequentiality == pytest.approx(0.5)

    def test_footprint_span(self):
        trace = make_trace([DiskAccess([(10, 2)]), DiskAccess([(100, 4)])])
        stats = compute_trace_statistics(trace)
        assert stats.footprint_span_blocks == 104 - 10

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            compute_trace_statistics(make_trace([]))

    def test_describe_renders(self):
        trace = make_trace([DiskAccess([(0, 1)])])
        text = compute_trace_statistics(trace).describe()
        assert "records" in text and "Zipf" in text

    def test_synthetic_trace_alpha_near_spec(self):
        """A whole-file-read trace inherits the file-level skew."""
        spec = SyntheticSpec(
            n_requests=4000, n_files=500, zipf_alpha=0.9, file_size_bytes=4096
        )
        _, trace = SyntheticWorkload(spec).build()
        stats = compute_trace_statistics(trace)
        assert stats.fitted_zipf_alpha == pytest.approx(0.9, abs=0.25)
