"""Timed JSONL trace format: optional ``"t"`` key, streaming, gzip."""

import gzip
import json

import pytest

from repro.errors import WorkloadError
from repro.workloads.trace import (
    DiskAccess,
    TimedAccess,
    Trace,
    TraceMeta,
    iter_trace_records,
    open_trace,
    save_trace,
)


class TestTimedAccess:
    def test_carries_timestamp(self):
        record = TimedAccess([(0, 4)], True, timestamp_ms=12.5)
        assert record.timestamp_ms == 12.5
        assert record.is_write

    def test_negative_timestamp_rejected(self):
        with pytest.raises(WorkloadError, match="negative timestamp"):
            TimedAccess([(0, 4)], timestamp_ms=-1.0)

    def test_equality_ignores_timestamp(self):
        """Same request, different clock — read-merging treats them alike."""
        timed = TimedAccess([(0, 4)], False, timestamp_ms=3.0)
        plain = DiskAccess([(0, 4)], False)
        assert timed == plain
        assert hash(timed) == hash(plain)


class TestRoundTrip:
    def test_untimed_roundtrip_unchanged(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = Trace([DiskAccess([(0, 4), (10, 2)], True)], TraceMeta())
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.records == trace.records
        assert not isinstance(loaded[0], TimedAccess)
        # the untimed shape serializes exactly as before: no "t" key
        record_line = path.read_text().splitlines()[1]
        assert "t" not in json.loads(record_line)

    def test_timed_roundtrip_preserves_timestamps(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            TimedAccess([(0, 4)], False, 0.0),
            TimedAccess([(8, 2)], True, 1.25),
        ]
        Trace(records, TraceMeta(name="x")).save(path)
        loaded = Trace.load(path)
        assert [r.timestamp_ms for r in loaded] == [0.0, 1.25]
        assert all(isinstance(r, TimedAccess) for r in loaded)

    def test_mixed_records_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [DiskAccess([(0, 1)]), TimedAccess([(4, 1)], False, 2.0)]
        Trace(records, TraceMeta()).save(path)
        loaded = Trace.load(path)
        assert not isinstance(loaded[0], TimedAccess)
        assert isinstance(loaded[1], TimedAccess)

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        records = [TimedAccess([(0, 4)], False, 5.0)]
        Trace(records, TraceMeta(name="gz")).save(path)
        with gzip.open(path, "rt") as fh:  # really compressed
            assert json.loads(fh.readline())["meta"]["name"] == "gz"
        assert Trace.load(path)[0].timestamp_ms == 5.0


class TestStreaming:
    def test_save_accepts_generator(self, tmp_path):
        path = tmp_path / "t.jsonl"

        def gen():
            for i in range(100):
                yield TimedAccess([(i, 1)], False, float(i))

        assert save_trace(path, TraceMeta(), gen()) == 100
        assert len(path.read_text().splitlines()) == 101

    def test_iter_trace_records_is_lazy(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(
            path, TraceMeta(), (DiskAccess([(i, 1)]) for i in range(10))
        )
        records = iter_trace_records(path)
        assert next(records).runs == ((0, 1),)
        assert len(list(records)) == 9

    def test_open_trace_returns_meta_before_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(path, TraceMeta(name="m"), [DiskAccess([(0, 1)])])
        meta, records = open_trace(path)
        assert meta.name == "m"
        assert len(list(records)) == 1


class TestMalformed:
    def test_bad_record_names_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"meta": {"name": "x"}}\n'
            '{"r": [[0, 4]], "w": 0}\n'
            '{"r": "nope", "w": 0}\n'
        )
        with pytest.raises(WorkloadError, match="line 3"):
            Trace.load(path)

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"r": [[0, 4]], "w": 0}\n')
        with pytest.raises(WorkloadError, match="meta"):
            Trace.load(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(WorkloadError, match="empty"):
            Trace.load(path)
