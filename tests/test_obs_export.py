"""Trace exporters and the Chrome-trace schema validator."""

import json

import pytest

from repro import SyntheticSpec, SyntheticWorkload
from repro import ultrastar_36z15_config
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.obs.export import chrome_trace_dict, write_chrome_trace, write_jsonl
from repro.obs.tracer import Tracer, tracing
from repro.obs.validate import disk_track_names, main, validate_chrome_trace
from repro.units import KB


@pytest.fixture(scope="module")
def traced():
    spec = SyntheticSpec(n_requests=150, file_size_bytes=16 * KB)
    layout, trace = SyntheticWorkload(spec).build()
    config = ultrastar_36z15_config()
    tracer = Tracer()
    with tracing(tracer):
        system = System(config)
        ReplayDriver(system, trace).run()
    return tracer, system


class TestChromeExport:
    def test_valid_schema(self, traced):
        tracer, _ = traced
        data = chrome_trace_dict(tracer)
        assert validate_chrome_trace(data) == []

    def test_one_track_per_disk_plus_shared(self, traced):
        tracer, system = traced
        data = chrome_trace_dict(tracer)
        disks = disk_track_names(data)
        assert len(disks) == system.config.array.n_disks
        names = {
            (e.get("args") or {}).get("name")
            for e in data["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert "host" in names and "bus" in names
        assert any(n.startswith("ctrl") for n in names)

    def test_timestamps_in_microseconds(self, traced):
        tracer, _ = traced
        data = chrome_trace_dict(tracer)
        sim_max = max(e[4] for e in tracer.events)
        out_max = max(
            e["ts"] for e in data["traceEvents"] if e.get("ph") != "M"
        )
        assert out_max == pytest.approx(sim_max * 1000.0)

    def test_write_roundtrip(self, traced, tmp_path):
        tracer, _ = traced
        path = write_chrome_trace(tracer, tmp_path / "t.trace.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(data) == []
        assert data["displayTimeUnit"] == "ms"


class TestJsonlExport:
    def test_header_and_lines(self, traced, tmp_path):
        tracer, _ = traced
        path = write_jsonl(tracer, tmp_path / "t.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        assert header["events"] == len(tracer.events)
        assert header["dropped"] == 0
        assert len(lines) == len(tracer.events) + 1
        sample = json.loads(lines[1])
        assert {"run", "ph", "track", "name", "ts"} <= set(sample)


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_detects_unbalanced_async(self, traced):
        tracer, _ = traced
        data = chrome_trace_dict(tracer)
        events = [e for e in data["traceEvents"] if e.get("ph") != "e"]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("unclosed" in p for p in problems)

    def test_detects_partial_overlap(self):
        events = [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0, "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 0, "ts": 5, "dur": 10},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("overlap" in p for p in problems)

    def test_nested_x_spans_allowed(self):
        events = [
            {"ph": "X", "name": "outer", "pid": 1, "tid": 0, "ts": 0, "dur": 10},
            {"ph": "X", "name": "inner", "pid": 1, "tid": 0, "ts": 2, "dur": 3},
        ]
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_cli_accepts_valid_trace(self, traced, tmp_path, capsys):
        tracer, system = traced
        path = write_chrome_trace(tracer, tmp_path / "t.trace.json")
        n_disks = system.config.array.n_disks
        assert main([str(path), "--expect-disk-tracks", str(n_disks)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_cli_rejects_wrong_disk_count(self, traced, tmp_path, capsys):
        tracer, _ = traced
        path = write_chrome_trace(tracer, tmp_path / "t.trace.json")
        assert main([str(path), "--expect-disk-tracks", "99"]) == 1

    def test_cli_rejects_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert main([str(path)]) == 1

    def test_cli_usage_errors(self, capsys):
        assert main([]) == 2
        assert main(["a.json", "--expect-disk-tracks", "x"]) == 2
