"""Closed-form models: hit rates, utilization, runs, striping, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.hitrate import conventional_hit_rate, for_hit_rate
from repro.analysis.sequential_run import (
    expected_sequential_run,
    expected_sequential_run_exact,
)
from repro.analysis.striping_model import gamma_uniform, striped_response_time
from repro.analysis.utilization import (
    for_utilization_reduction,
    read_service_time,
)
from repro.analysis.validation import run_read_validation, run_write_validation
from repro.analysis.zipf_model import hdc_expected_hit_rate
from repro.config import DiskParams
from repro.errors import ConfigError
from repro.units import KB


class TestHitRates:
    # Paper parameters: c = 1024 blocks (4 MB), s = 27 segments.
    C, S = 1024, 27

    def test_for_dominates_conventional_for_small_files(self):
        """§4's analytic claim, for t > 27 streams and files < 128 KB."""
        for t in (64, 128, 256):
            for f in (2, 4, 8, 16):
                h = conventional_hit_rate(t, self.C, self.S, 1, f)
                h_for = for_hit_rate(t, self.C, self.S, 1, f)
                assert h_for >= h

    def test_conventional_regimes(self):
        # few streams: limited by min(f, c/s)
        h = conventional_hit_rate(10, self.C, self.S, 1, 4)
        assert h == pytest.approx(3 / 4)
        # many streams: limited by request size p
        h = conventional_hit_rate(100, self.C, self.S, 2, 4)
        assert h == pytest.approx(1 / 2)

    def test_for_regimes(self):
        # fits in cache: hit rate (f-1)/f
        assert for_hit_rate(10, self.C, self.S, 1, 4) == pytest.approx(3 / 4)
        # overflows cache: limited by p
        assert for_hit_rate(1000, self.C, self.S, 2, 4) == pytest.approx(1 / 2)

    def test_for_threshold_is_c_over_f(self):
        f = 4
        t_limit = self.C // f
        high = for_hit_rate(t_limit, self.C, self.S, 1, f)
        low = for_hit_rate(t_limit + 1, self.C, self.S, 1, f)
        assert high > low

    def test_p_cannot_exceed_f(self):
        with pytest.raises(ConfigError):
            for_hit_rate(10, self.C, self.S, 8, 4)

    def test_parameters_must_be_positive(self):
        with pytest.raises(ConfigError):
            conventional_hit_rate(0, self.C, self.S, 1, 4)


class TestUtilization:
    def test_paper_29_percent_example(self):
        """§4: 4-KB files vs 128-KB read-ahead on the 36Z15 ~ 29% less."""
        reduction = for_utilization_reduction(
            DiskParams(), file_blocks=1, readahead_blocks=32, block_size=4 * KB
        )
        assert reduction == pytest.approx(0.29, abs=0.04)

    def test_no_reduction_for_large_files(self):
        reduction = for_utilization_reduction(
            DiskParams(), file_blocks=32, readahead_blocks=32, block_size=4 * KB
        )
        assert reduction == 0.0

    def test_service_time_composition(self):
        t = read_service_time(DiskParams(), 32, 4 * KB, seek_ms=3.4)
        assert t == pytest.approx(3.4 + 2.0 + 32 * 4096 / 54_000)

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            read_service_time(DiskParams(), -1, 4 * KB)
        with pytest.raises(ConfigError):
            for_utilization_reduction(DiskParams(), 0, 32, 4 * KB)


class TestSequentialRun:
    def test_zero_frag_gives_whole_file(self):
        assert expected_sequential_run(8, 0.0) == 8.0
        assert expected_sequential_run_exact(8, 0.0) == 8.0

    def test_full_frag_gives_single_blocks(self):
        assert expected_sequential_run_exact(8, 1.0) == pytest.approx(1.0)

    def test_paper_checkpoints_at_5_percent(self):
        """Fig. 1: 32-block files -> ~12; 8-block files -> ~6."""
        assert expected_sequential_run_exact(32, 0.05) == pytest.approx(12, rel=0.4)
        assert expected_sequential_run_exact(8, 0.05) == pytest.approx(6, rel=0.25)

    @given(
        f=st.integers(min_value=1, max_value=128),
        p=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=80)
    def test_exact_bounded_and_monotone(self, f, p):
        run = expected_sequential_run_exact(f, p)
        assert 1.0 - 1e-9 <= run <= f + 1e-9
        assert expected_sequential_run_exact(f, min(1.0, p + 0.05)) <= run + 1e-9

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            expected_sequential_run(0, 0.5)
        with pytest.raises(ConfigError):
            expected_sequential_run(4, 1.5)


class TestStripingModel:
    def test_gamma_uniform(self):
        assert gamma_uniform(1) == pytest.approx(1.0)
        assert gamma_uniform(4) == pytest.approx(8 / 5)

    def test_gamma_increases_with_width(self):
        assert gamma_uniform(8) > gamma_uniform(2)

    def test_striped_response_time(self):
        t = striped_response_time(lambda r: 1.0 + r, n_blocks=8, n_subrequests=4)
        assert t == pytest.approx(gamma_uniform(4) * 3.0)

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            gamma_uniform(0)
        with pytest.raises(ConfigError):
            striped_response_time(lambda r: r, 0, 2)


class TestZipfModel:
    def test_hdc_hit_rate_prediction(self):
        assert hdc_expected_hit_rate(100, 1000, 0.0) == pytest.approx(0.1)
        assert hdc_expected_hit_rate(1000, 1000, 0.9) == pytest.approx(1.0)


class TestValidation:
    def test_read_validation_within_paper_tolerance(self):
        result = run_read_validation(n_requests=300, seed=1)
        assert result.error_fraction < 0.08  # paper: reads within 8%

    def test_write_validation_within_paper_tolerance(self):
        result = run_write_validation(n_requests=300, seed=2)
        assert result.error_fraction < 0.08

    def test_error_fraction_zero_denominator(self):
        from repro.analysis.validation import ValidationResult

        assert ValidationResult("x", 1.0, 0.0).error_fraction == 0.0
