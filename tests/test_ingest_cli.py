"""The ``python -m repro.ingest`` CLI: convert, stats, replay."""

from pathlib import Path

import pytest

from repro.ingest.cli import main
from repro.workloads.trace import TimedAccess, Trace

DATA = Path(__file__).parent / "data"

SAMPLES = {
    "blktrace": DATA / "sample_blktrace.txt",
    "msr": DATA / "sample_msr.csv",
    "fio": DATA / "sample_fio.log",
}


class TestConvert:
    @pytest.mark.parametrize("fmt", sorted(SAMPLES))
    def test_roundtrip_each_format(self, fmt, tmp_path, capsys):
        out = tmp_path / f"{fmt}.jsonl"
        assert main(["convert", str(SAMPLES[fmt]), str(out)]) == 0
        assert f"({fmt})" in capsys.readouterr().out
        trace = Trace.load(out)
        assert len(trace) > 0
        assert all(isinstance(r, TimedAccess) for r in trace)
        assert trace.meta.extra["source_format"] == fmt
        # timestamps re-zeroed and non-decreasing
        stamps = [r.timestamp_ms for r in trace]
        assert stamps[0] == 0.0
        assert stamps == sorted(stamps)

    def test_gzip_output(self, tmp_path):
        out = tmp_path / "t.jsonl.gz"
        assert main(["convert", str(SAMPLES["fio"]), str(out)]) == 0
        assert out.read_bytes()[:2] == b"\x1f\x8b"
        assert len(Trace.load(out)) == 60

    def test_scale_remap_records_bounds(self, tmp_path):
        out = tmp_path / "t.jsonl"
        rc = main(
            [
                "convert",
                str(SAMPLES["msr"]),
                str(out),
                "--remap",
                "scale",
                "--array-blocks",
                "100000",
            ]
        )
        assert rc == 0
        trace = Trace.load(out)
        assert trace.meta.extra["remap"] == "scale"
        assert "source_bounds" in trace.meta.extra
        assert all(
            start + length <= 100_000
            for r in trace
            for start, length in r.runs
        )

    def test_bad_input_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("Timestamp,Hostname,DiskNumber,Type,Offset,Size,R\n" "x,y\n")
        assert main(["convert", str(bad), str(tmp_path / "o.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    @pytest.mark.parametrize("fmt", sorted(SAMPLES))
    def test_matches_golden_after_convert(self, fmt, tmp_path, capsys):
        """The CI smoke in script form: convert, stats, diff golden."""
        out = tmp_path / f"{fmt}.jsonl"
        main(["convert", str(SAMPLES[fmt]), str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        got = capsys.readouterr().out
        golden = (
            Path(__file__).parent / "golden" / f"ingest_stats_{fmt}.txt"
        ).read_text()
        assert got == golden

    def test_stats_on_raw_source(self, capsys):
        assert main(["stats", str(SAMPLES["fio"])]) == 0
        out = capsys.readouterr().out
        assert "workload characterization: sample_fio" in out
        assert "interarrival (ms)" in out


class TestReplay:
    def test_replay_deterministic_summary(self, tmp_path, capsys):
        converted = tmp_path / "t.jsonl"
        main(["convert", str(SAMPLES["fio"]), str(converted)])
        capsys.readouterr()
        args = [
            "replay",
            str(converted),
            "--technique",
            "for",
            "--accel",
            "8",
            "--seed",
            "3",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert "technique=FOR mode=open" in first
        assert "records=60" in first

    def test_replay_closed_loop(self, tmp_path, capsys):
        converted = tmp_path / "t.jsonl"
        main(["convert", str(SAMPLES["fio"]), str(converted)])
        capsys.readouterr()
        assert main(["replay", str(converted), "--mode", "closed"]) == 0
        assert "mode=closed" in capsys.readouterr().out

    def test_unknown_technique_rejected(self, capsys):
        assert main(["replay", str(SAMPLES["fio"]), "--technique", "zzz"]) == 1
        assert "unknown technique" in capsys.readouterr().err
