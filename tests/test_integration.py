"""End-to-end invariants tying the whole stack together.

These are the paper's headline qualitative claims, checked on small but
statistically meaningful workloads; they exercise every subsystem at
once (workload generation, striping, caching, read-ahead, scheduling,
bus, HDC, metrics).
"""

import pytest

from repro import (
    FOR,
    FOR_HDC,
    NORA,
    SEGM,
    SEGM_HDC,
    SyntheticSpec,
    SyntheticWorkload,
    TechniqueRunner,
    ultrastar_36z15_config,
)
from repro.units import KB, MB


@pytest.fixture(scope="module")
def small_file_runner():
    """2000 requests over 16-KB files — the paper's sweet spot for FOR."""
    spec = SyntheticSpec(n_requests=2000, file_size_bytes=16 * KB, period=1)
    layout, trace = SyntheticWorkload(spec).build()
    import dataclasses

    _, history = SyntheticWorkload(dataclasses.replace(spec, period=0)).build()
    return TechniqueRunner(layout, trace, profile_trace=history)


@pytest.fixture(scope="module")
def config():
    return ultrastar_36z15_config()


@pytest.fixture(scope="module")
def results(small_file_runner, config):
    out = {}
    for tech in (SEGM, NORA, FOR):
        out[tech.key] = small_file_runner.run(config, tech)
    for tech in (SEGM_HDC, FOR_HDC):
        out[tech.key] = small_file_runner.run(config, tech, hdc_bytes=2 * MB)
    return out


class TestHeadlineClaims:
    def test_for_beats_conventional_on_small_files(self, results):
        """Fig. 3 at 16 KB: FOR should cut I/O time by roughly 40%."""
        speedup = results["for"].speedup_vs(results["segm"])
        assert 0.25 < speedup < 0.60

    def test_for_beats_no_readahead(self, results):
        assert results["for"].io_time_ms < results["nora"].io_time_ms

    def test_combination_is_best(self, results):
        """§6: 'the combination of our techniques achieves the best
        overall performance'."""
        best = min(r.io_time_ms for r in results.values())
        assert results["for+hdc"].io_time_ms == best

    def test_hdc_improves_both_bases(self, results):
        assert results["segm+hdc"].io_time_ms < results["segm"].io_time_ms
        assert results["for+hdc"].io_time_ms < results["for"].io_time_ms

    def test_for_reads_far_fewer_media_blocks(self, results):
        """FOR's whole point: media reads track useful data only."""
        blind = results["segm"].controller.media_blocks_read
        fo = results["for"].controller.media_blocks_read
        assert fo < blind / 3

    def test_for_cache_pollution_lower(self, results):
        assert (
            results["for"].cache.pollution_rate
            < results["segm"].cache.pollution_rate
        )

    def test_every_record_completed_everywhere(self, results):
        assert {r.records for r in results.values()} == {2000}

    def test_hdc_hit_rate_within_sane_band(self, results):
        rate = results["segm+hdc"].hdc_hit_rate
        assert 0.02 < rate < 0.6

    def test_disk_utilizations_balanced(self, results):
        """128-KB striping keeps the 8 disks roughly even."""
        assert results["segm"].load_imbalance < 1.5

    def test_throughput_consistent_with_io_time(self, results):
        segm, fo = results["segm"], results["for"]
        assert fo.throughput_mb_s > segm.throughput_mb_s


class TestWriteWorkloadInvariants:
    def test_writes_reach_media_exactly_once_plus_flush(self, config):
        spec = SyntheticSpec(
            n_requests=400, file_size_bytes=16 * KB, write_fraction=1.0
        )
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        result = runner.run(config, SEGM)
        written = result.controller.media_blocks_written
        assert written == trace.total_blocks

    def test_hdc_dirty_blocks_flushed_at_end(self, config):
        spec = SyntheticSpec(
            n_requests=400, file_size_bytes=16 * KB, write_fraction=0.5
        )
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        result = runner.run(config, SEGM_HDC, hdc_bytes=2 * MB)
        absorbed = result.controller.hdc_write_absorbed
        flushed = result.controller.flush_blocks_written
        assert absorbed > 0
        # every absorbed write lands on the media eventually (dirty
        # blocks rewritten between flushes may merge, hence <=)
        assert 0 < flushed <= absorbed

    def test_conservation_of_requested_blocks(self, config):
        spec = SyntheticSpec(n_requests=300, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        result = runner.run(config, SEGM)
        # requested blocks equals replayed trace blocks (reads merged
        # by the page cache are not re-requested at the controller)
        assert result.blocks_requested <= trace.total_blocks
        assert result.blocks_requested > 0.8 * trace.total_blocks


class TestDeterminism:
    def test_full_stack_reproducible(self, config):
        spec = SyntheticSpec(n_requests=300, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        a = TechniqueRunner(layout, trace).run(config, FOR)
        b = TechniqueRunner(layout, trace).run(config, FOR)
        assert a.io_time_ms == b.io_time_ms
        assert a.controller.media_reads == b.controller.media_reads

    def test_different_seed_changes_timing_not_work(self, config):
        spec = SyntheticSpec(n_requests=300, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        a = runner.run(config, SEGM)
        b = runner.run(config.with_(seed=99), SEGM)
        assert a.records == b.records
        assert a.io_time_ms != pytest.approx(b.io_time_ms, rel=1e-6)
