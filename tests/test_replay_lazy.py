"""Lazy iterator sources replay identically to materialized traces."""

import pytest

from repro.errors import WorkloadError
from repro.experiments import trace_replay
from repro.experiments.runner import TechniqueRunner
from repro.experiments.techniques import ALL_TECHNIQUES
from repro.host.openloop import OpenLoopDriver
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.loadgen import population_trace, preset_population
from repro.units import KB
from repro.workloads.trace import DiskAccess, TimedAccess, Trace, TraceMeta


def timed_records(n=20, gap_ms=5.0, stride=64):
    return [
        TimedAccess([((i * stride) % 4096, 8)], i % 3 == 0, i * gap_ms)
        for i in range(n)
    ]


def timed_trace(n=20, gap_ms=5.0, stride=64):
    return Trace(
        timed_records(n, gap_ms, stride),
        TraceMeta(n_streams=4, coalesce_prob=0.0),
    )


def driver_fingerprint(driver):
    return (
        driver.records_completed,
        driver.commands_issued,
        driver.reads_merged,
        driver.finish_time,
        tuple(driver.record_latencies_ms),
    )


class TestClosedLoopLazy:
    def test_generator_source_matches_trace(self, small_config):
        trace = timed_trace(30)
        baseline = ReplayDriver(System(small_config), trace)
        baseline.run()

        system = System(small_config)
        lazy = ReplayDriver(
            system, iter(trace.records), n_streams=4, coalesce_prob=0.0
        )
        lazy.run()
        assert driver_fingerprint(lazy) == driver_fingerprint(baseline)

    def test_generator_without_meta_uses_defaults(self, small_config):
        """A bare generator falls back to TraceMeta defaults."""
        driver = ReplayDriver(
            System(small_config), iter(timed_records(5)), coalesce_prob=0.0
        )
        assert driver.n_streams == TraceMeta().n_streams
        driver.run()
        assert driver.records_completed == 5

    def test_empty_generator_rejected(self, small_config):
        with pytest.raises(WorkloadError, match="empty trace"):
            ReplayDriver(System(small_config), iter([]))

    def test_records_taken_tracks_consumption(self, small_config):
        driver = ReplayDriver(
            System(small_config), iter(timed_records(12)),
            n_streams=2, coalesce_prob=0.0,
        )
        driver.run()
        assert driver.records_taken == 12
        assert driver.records_completed == 12


class TestOpenLoopLazy:
    def test_generator_source_matches_trace(self, small_config):
        trace = timed_trace(30, gap_ms=2.0)
        baseline = OpenLoopDriver(System(small_config), trace)
        baseline.run()

        lazy = OpenLoopDriver(
            System(small_config), iter(trace.records), coalesce_prob=0.0
        )
        lazy.run()
        assert driver_fingerprint(lazy) == driver_fingerprint(baseline)
        assert lazy.records_admitted == 30

    def test_empty_generator_rejected(self, small_config):
        with pytest.raises(WorkloadError, match="empty timed trace"):
            OpenLoopDriver(System(small_config), iter([]))

    def test_untimed_first_record_rejected(self, small_config):
        source = iter([DiskAccess([(0, 8)])])
        with pytest.raises(WorkloadError, match="timed trace"):
            OpenLoopDriver(System(small_config), source)

    def test_untimed_mid_stream_record_rejected(self, small_config):
        """A stream that goes untimed partway through fails loudly,
        naming the offending record."""

        def source():
            yield TimedAccess([(0, 8)], False, 0.0)
            yield TimedAccess([(64, 8)], False, 5.0)
            yield DiskAccess([(128, 8)])

        driver = OpenLoopDriver(
            System(small_config), source(), coalesce_prob=0.0
        )
        with pytest.raises(WorkloadError, match="record 2 has no timestamp"):
            driver.run()

    def test_loadgen_stream_replays_open_loop(self, small_config):
        """A loadgen population streams straight into the driver."""
        from repro.loadgen import build_layout, generate_records

        spec = preset_population(
            "uniform", n_clients=100, n_requests=80, n_files=60,
            total_blocks=small_config.array_blocks,
        )
        layout = build_layout(spec, 3)
        driver = OpenLoopDriver(
            System(small_config),
            generate_records(spec, 3, layout=layout),
            coalesce_prob=0.0,
            accel=50.0,
        )
        driver.run()
        assert driver.records_completed == 80


class TestTechniqueRunnerFactory:
    @pytest.fixture
    def population(self, small_config):
        spec = preset_population(
            "web3", n_clients=150, n_requests=120, n_files=80,
            mean_file_kb=32.0, total_blocks=small_config.array_blocks,
        )
        return population_trace(spec, 5)

    def test_rejects_neither_source(self, population):
        layout, _trace = population
        with pytest.raises(WorkloadError, match="trace or a trace_factory"):
            TechniqueRunner(layout, None)

    @pytest.mark.parametrize("key", ["segm", "for+hdc"])
    def test_factory_matches_trace(self, small_config, population, key):
        """Factory-fed replays are byte-identical to materialized ones,
        open-loop, for both a plain and an HDC technique."""
        layout, trace = population
        technique = ALL_TECHNIQUES[key]
        hdc = 64 * KB if technique.hdc else 0

        eager = TechniqueRunner(layout, trace).run(
            small_config, technique, hdc_bytes=hdc, open_loop=True, accel=50.0
        )
        lazy = TechniqueRunner(
            layout, None, profile_trace=trace,
            trace_factory=lambda: iter(trace.records),
        ).run(
            small_config, technique, hdc_bytes=hdc, open_loop=True,
            accel=50.0, coalesce_prob=trace.meta.coalesce_prob,
        )
        assert lazy.io_time_ms == eager.io_time_ms
        assert lazy.record_latencies_ms == eager.record_latencies_ms
        assert lazy.commands == eager.commands
        assert lazy.cache_hit_rate == eager.cache_hit_rate

    def test_profile_from_factory_stream(self, small_config, population):
        """With no profile trace, HDC planning pulls its own stream."""
        layout, trace = population
        runner = TechniqueRunner(
            layout, None, trace_factory=lambda: iter(trace.records)
        )
        profile = runner.profile()
        assert profile.counts  # counted something
        eager_profile = TechniqueRunner(layout, trace).profile()
        assert profile.counts == eager_profile.counts


class TestTraceReplayLazy:
    def test_lazy_matches_eager_synthetic(self):
        eager = trace_replay.run(scale=0.02, techniques=("segm",))
        lazy = trace_replay.run(scale=0.02, techniques=("segm",), lazy=True)
        assert lazy.to_text() == eager.to_text()

    def test_lazy_matches_eager_ingested(self, tmp_path):
        """The trace_path branch re-parses the file per technique."""
        from repro.workloads.trace import save_trace

        path = tmp_path / "t.jsonl"
        save_trace(
            path,
            TraceMeta(n_streams=4, coalesce_prob=0.0),
            timed_records(40, gap_ms=1.0),
        )
        eager = trace_replay.run(
            trace_path=str(path), techniques=("segm", "for"), accel=10.0
        )
        lazy = trace_replay.run(
            trace_path=str(path), techniques=("segm", "for"), accel=10.0,
            lazy=True,
        )
        assert lazy.to_text() == eager.to_text()
