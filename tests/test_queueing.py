"""MVA queueing model, cross-validated against the event simulator."""

import numpy as np
import pytest

from repro.analysis.queueing import (
    busy_time_bound_ms,
    mva_closed,
    predict_io_time_ms,
)
from repro.config import ArrayParams, ReadAheadKind, SchedulerKind, make_config
from repro.errors import ConfigError
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.mechanics.seek import SeekModel
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


class TestMvaProperties:
    def test_single_stream_no_queueing(self):
        p = mva_closed(1, 8, 6.0)
        assert p.response_ms == pytest.approx(6.0)
        assert p.throughput_ops_ms == pytest.approx(1 / 6.0)

    def test_throughput_saturates_at_capacity(self):
        p = mva_closed(1000, 8, 6.0)
        assert p.throughput_ops_ms == pytest.approx(8 / 6.0, rel=0.01)
        assert p.utilization == pytest.approx(1.0, abs=0.01)

    def test_throughput_monotone_in_streams(self):
        xs = [mva_closed(n, 8, 6.0).throughput_ops_ms for n in (1, 4, 16, 64)]
        assert xs == sorted(xs)

    def test_response_monotone_in_streams(self):
        rs = [mva_closed(n, 8, 6.0).response_ms for n in (1, 8, 64)]
        assert rs == sorted(rs)

    def test_busy_time_bound_is_lower_bound(self):
        predicted = predict_io_time_ms(1000, 64, 8, 6.0)
        bound = busy_time_bound_ms(1000, 8, 6.0)
        assert predicted >= bound * 0.999

    def test_zero_operations(self):
        assert predict_io_time_ms(0, 4, 8, 6.0) == 0.0

    def test_validation_errors(self):
        with pytest.raises(ConfigError):
            mva_closed(0, 8, 6.0)
        with pytest.raises(ConfigError):
            mva_closed(8, 8, 0.0)
        with pytest.raises(ConfigError):
            predict_io_time_ms(-1, 4, 8, 6.0)
        with pytest.raises(ConfigError):
            busy_time_bound_ms(10, 0, 6.0)


class TestMvaVsSimulator:
    @pytest.mark.parametrize("streams", [1, 8, 64])
    def test_prediction_brackets_simulation(self, streams):
        """FCFS + No-RA + random single-block reads is exactly the
        system MVA models; simulated time must land near it."""
        config = make_config(
            array=ArrayParams(n_disks=8, striping_unit_bytes=128 * 1024),
            scheduler=SchedulerKind.FCFS,
            readahead=ReadAheadKind.NONE,
            seed=5,
        )
        system = System(config)
        rng = np.random.default_rng(5)
        n_ops = 600
        starts = rng.integers(0, system.striping.total_blocks - 4, size=n_ops)
        trace = Trace(
            [DiskAccess([(int(s), 1)]) for s in starts],
            TraceMeta(n_streams=streams, coalesce_prob=1.0),
        )
        elapsed = ReplayDriver(system, trace).run()

        disk = config.disk
        geometry = system.controllers[0].drive.geometry
        service = (
            disk.command_overhead_ms
            + SeekModel(disk.seek).average_seek_time(geometry.n_cylinders)
            + disk.avg_rotational_latency_ms
            + config.block_size / disk.transfer_rate_bytes_ms
        )
        predicted = predict_io_time_ms(n_ops, streams, 8, service)
        # MVA assumes exponential service; the real mix (deterministic
        # transfer + uniform rotation + seek) is less variable, so the
        # simulator should be same-order, within ~35%.
        assert predicted * 0.6 < elapsed < predicted * 1.45
