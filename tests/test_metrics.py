"""Metrics collection and table rendering."""

import pytest

from repro.cache.base import CacheStats
from repro.controller.stats import ControllerStats
from repro.metrics.collector import RunResult
from repro.metrics.report import format_table


def make_result(io_time_ms=1000.0, blocks=100, **ctrl_kwargs):
    ctrl = ControllerStats(**ctrl_kwargs)
    ctrl.blocks_requested = blocks
    return RunResult(
        io_time_ms=io_time_ms,
        records=10,
        commands=20,
        blocks_requested=blocks,
        block_size=4096,
        controller=ctrl,
        cache=CacheStats(block_hits=60, block_misses=40),
        disk_utilizations=[0.5, 0.7],
        bus_utilization=0.1,
    )


class TestRunResult:
    def test_time_units(self):
        assert make_result(io_time_ms=2500.0).io_time_s == pytest.approx(2.5)

    def test_throughput(self):
        result = make_result(io_time_ms=1000.0, blocks=1000)
        # 1000 x 4096 bytes over 1 s = 4.096 MB/s
        assert result.throughput_mb_s == pytest.approx(4.096)

    def test_zero_time_throughput(self):
        assert make_result(io_time_ms=0.0).throughput_mb_s == 0.0

    def test_cache_hit_rate(self):
        assert make_result().cache_hit_rate == pytest.approx(0.6)

    def test_hdc_hit_rate(self):
        result = make_result(blocks=100, hdc_block_hits=25)
        assert result.hdc_hit_rate == pytest.approx(0.25)

    def test_utilization_aggregates(self):
        result = make_result()
        assert result.avg_disk_utilization == pytest.approx(0.6)
        assert result.load_imbalance == pytest.approx(0.7 / 0.6)

    def test_speedup_vs(self):
        fast = make_result(io_time_ms=600.0)
        slow = make_result(io_time_ms=1000.0)
        assert fast.speedup_vs(slow) == pytest.approx(0.4)
        assert slow.speedup_vs(fast) == pytest.approx(-2 / 3)


class TestControllerStats:
    def test_merge_sums_everything(self):
        a = ControllerStats(commands=1, media_reads=2, hdc_block_hits=3)
        b = ControllerStats(commands=10, media_reads=20, hdc_block_hits=30)
        merged = a.merge(b)
        assert merged.commands == 11
        assert merged.media_reads == 22
        assert merged.hdc_block_hits == 33

    def test_readahead_ratio(self):
        stats = ControllerStats(media_blocks_read=100, readahead_blocks=40)
        assert stats.readahead_ratio == pytest.approx(0.4)
        assert ControllerStats().readahead_ratio == 0.0


class TestCacheStats:
    def test_merge(self):
        a = CacheStats(block_hits=1, block_misses=2, useless_evictions=3)
        b = CacheStats(block_hits=10, block_misses=20, useless_evictions=30)
        merged = a.merge(b)
        assert merged.block_hits == 11
        assert merged.useless_evictions == 33

    def test_rates_with_zero_activity(self):
        empty = CacheStats()
        assert empty.hit_rate == 0.0
        assert empty.pollution_rate == 0.0


class TestFormatTable:
    def test_columns_align(self):
        text = format_table(["name", "v"], [["long-name", 1.5], ["x", 10]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("v") == lines[2].index("1.500")

    def test_float_formatting(self):
        text = format_table(["a"], [[0.123456]])
        assert "0.123" in text

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
