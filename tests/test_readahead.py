"""Read-ahead policies and the FOR sequentiality bitmap."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, ConfigError
from repro.readahead.bitmap import SequentialityBitmap
from repro.readahead.blind import BlindReadAhead
from repro.readahead.file_oriented import FileOrientedReadAhead
from repro.readahead.none import NoReadAhead


class TestBitmap:
    def test_needs_positive_size(self):
        with pytest.raises(AddressError):
            SequentialityBitmap(0)

    def test_set_and_query(self):
        bitmap = SequentialityBitmap(16)
        bitmap.set_continuation(3)
        assert bitmap.is_continuation(3)
        assert not bitmap.is_continuation(4)
        bitmap.set_continuation(3, value=False)
        assert not bitmap.is_continuation(3)

    def test_out_of_range_query_is_false(self):
        bitmap = SequentialityBitmap(8)
        assert not bitmap.is_continuation(-1)
        assert not bitmap.is_continuation(8)

    def test_out_of_range_set_raises(self):
        bitmap = SequentialityBitmap(8)
        with pytest.raises(AddressError):
            bitmap.set_continuation(8)
        with pytest.raises(AddressError):
            bitmap.set_many([2, 9])

    def test_run_length_counts_to_first_zero(self):
        bitmap = SequentialityBitmap(16)
        bitmap.set_many([5, 6, 7])  # blocks 4..7 form a run
        assert bitmap.run_length_from(4, limit=16) == 4
        assert bitmap.run_length_from(5, limit=16) == 3
        assert bitmap.run_length_from(8, limit=16) == 1

    def test_run_length_respects_limit(self):
        bitmap = SequentialityBitmap(16)
        bitmap.set_many(range(1, 16))
        assert bitmap.run_length_from(0, limit=4) == 4

    def test_run_length_clamps_at_end(self):
        bitmap = SequentialityBitmap(8)
        bitmap.set_many(range(1, 8))
        assert bitmap.run_length_from(5, limit=32) == 3

    def test_overhead_matches_one_bit_per_block(self):
        assert SequentialityBitmap(4096 * 8).overhead_bytes() == 4096
        assert SequentialityBitmap(9).overhead_bytes() == 2

    def test_clear_and_ones(self):
        bitmap = SequentialityBitmap(16)
        bitmap.set_many([1, 2, 3])
        assert bitmap.ones() == 3
        bitmap.clear()
        assert bitmap.ones() == 0

    def test_set_many_empty_ok(self):
        SequentialityBitmap(8).set_many([])


class TestBlind:
    def test_reads_full_segment(self):
        policy = BlindReadAhead(32)
        assert policy.read_size(0, 4, 10_000) == 32

    def test_never_shrinks_request(self):
        policy = BlindReadAhead(8)
        assert policy.read_size(0, 16, 10_000) == 16

    def test_clamps_at_disk_end(self):
        policy = BlindReadAhead(32)
        assert policy.read_size(9_990, 4, 10_000) == 10

    def test_rejects_zero_readahead(self):
        with pytest.raises(ConfigError):
            BlindReadAhead(0)


class TestNone:
    def test_exact_request(self):
        policy = NoReadAhead()
        assert policy.read_size(100, 7, 10_000) == 7

    def test_clamped(self):
        assert NoReadAhead().read_size(9_998, 7, 10_000) == 2


class TestFileOriented:
    def make(self, run_start, run_len, n_blocks=1000, max_ra=32):
        bitmap = SequentialityBitmap(n_blocks)
        end = min(run_start + run_len, n_blocks)
        bitmap.set_many(range(run_start + 1, end))
        return FileOrientedReadAhead(bitmap, max_ra)

    def test_stops_at_file_boundary(self):
        # file occupies blocks 10..17 (8 blocks)
        policy = self.make(10, 8)
        assert policy.read_size(10, 2, 1000) == 8

    def test_no_extension_when_next_block_is_other_file(self):
        policy = self.make(10, 8)
        assert policy.read_size(10, 8, 1000) == 8

    def test_capped_by_max_readahead(self):
        policy = self.make(0, 100, max_ra=32)
        assert policy.read_size(0, 4, 1000) == 32

    def test_mid_file_extension(self):
        policy = self.make(10, 8)
        assert policy.read_size(13, 1, 1000) == 5  # blocks 13..17

    def test_never_below_request(self):
        policy = self.make(10, 2)
        # host asks beyond what the bitmap considers one file
        assert policy.read_size(10, 6, 1000) == 6

    def test_clamps_at_disk_end(self):
        policy = self.make(990, 100, n_blocks=1000)
        assert policy.read_size(995, 2, 1000) == 5

    def test_rejects_zero_max(self):
        with pytest.raises(ConfigError):
            FileOrientedReadAhead(SequentialityBitmap(8), 0)

    @given(
        start=st.integers(min_value=0, max_value=900),
        req=st.integers(min_value=1, max_value=40),
    )
    def test_result_bounded_by_request_and_cap(self, start, req):
        bitmap = SequentialityBitmap(1000)
        bitmap.set_many(range(1, 1000, 2))  # arbitrary pattern
        policy = FileOrientedReadAhead(bitmap, 32)
        size = policy.read_size(start, req, 1000)
        clamped_req = min(req, 1000 - start)
        assert size >= clamped_req
        assert size <= max(clamped_req, 32)
        assert start + size <= 1000
