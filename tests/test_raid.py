"""RAID-1 mirroring extension."""

import pytest

from repro.array.raid import MirroredArray, mirrored_striping
from repro.config import ArrayParams, make_config
from repro.errors import ConfigError
from repro.host.system import System
from repro.units import KB


@pytest.fixture
def mirrored(small_disk, small_cache):
    config = make_config(
        disk=small_disk,
        cache=small_cache,
        array=ArrayParams(n_disks=4, striping_unit_bytes=16 * KB),
        seed=3,
    )
    system = System(config)
    return system, MirroredArray(system.array)


def test_mirrored_striping_uses_half_the_disks():
    layout = mirrored_striping(8, 32, 1000)
    assert layout.n_disks == 4


def test_odd_disk_count_rejected(small_disk, small_cache):
    with pytest.raises(ConfigError):
        mirrored_striping(3, 32, 1000)
    config = make_config(
        disk=small_disk,
        cache=small_cache,
        array=ArrayParams(n_disks=3, striping_unit_bytes=16 * KB),
    )
    with pytest.raises(ConfigError):
        MirroredArray(System(config).array)


def test_capacity_is_halved(mirrored):
    system, raid = mirrored
    assert raid.logical_capacity_blocks == system.striping.total_blocks // 2
    assert raid.n_disks == 4


def test_write_goes_to_both_replicas(mirrored):
    system, raid = mirrored
    done = []
    commands = raid.submit_logical(0, 4, is_write=True,
                                   on_complete=lambda: done.append(1))
    system.sim.run()
    assert done == [1]
    assert sorted(c.disk_id for c in commands) == [0, 2]
    # both replicas received the blocks on the media
    for disk in (0, 2):
        assert system.controllers[disk].stats.media_blocks_written == 4


def test_read_goes_to_exactly_one_replica(mirrored):
    system, raid = mirrored
    commands = raid.submit_logical(0, 4)
    system.sim.run()
    assert len(commands) == 1
    assert commands[0].disk_id in (0, 2)
    primary, mirror = raid.read_balance()
    assert primary + mirror == 1


def test_reads_balance_across_replicas(mirrored):
    system, raid = mirrored
    # saturate: issue many reads of the same unit without waiting
    for _ in range(20):
        raid.submit_logical(0, 4)
    system.sim.run()
    primary, mirror = raid.read_balance()
    assert primary > 0 and mirror > 0  # queue-aware selection splits load


def test_mirrored_reads_faster_than_serial_writes(mirrored):
    system, raid = mirrored
    t_write = []
    raid.submit_logical(64, 4, is_write=True,
                        on_complete=lambda: t_write.append(system.sim.now))
    system.sim.run()
    start = system.sim.now
    t_read = []
    raid.submit_logical(128, 4, on_complete=lambda: t_read.append(system.sim.now))
    system.sim.run()
    assert (t_read[0] - start) <= t_write[0] * 1.5
