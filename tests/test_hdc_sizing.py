"""§5's HDC sizing formulas."""

import pytest

from repro.analysis.hdc_sizing import (
    for_frees_more_memory,
    hdc_max_blocks,
    rmin_blind,
    rmin_for,
)
from repro.errors import ConfigError


def test_rmin_blind_is_streams_times_segment():
    # Table 1: c = 1024 blocks, s = 27 -> segment ~ 37.9 blocks
    assert rmin_blind(128, 1024, 27) == pytest.approx(128 * 1024 / 27)


def test_rmin_for_is_streams_times_file():
    assert rmin_for(128, 4.0) == 512.0


def test_for_needs_less_for_small_files():
    # 16-KB files (4 blocks) << 128-KB segments (32+ blocks)
    assert for_frees_more_memory(128, 1024, 27, 4.0)


def test_for_needs_more_for_huge_files():
    assert not for_frees_more_memory(128, 1024, 27, 64.0)


def test_hmax_subtracts_rmin():
    assert hdc_max_blocks(8, 1024, 512.0) == 8 * 1024 - 512


def test_hmax_clamps_at_zero():
    assert hdc_max_blocks(2, 10, 1e9) == 0.0


def test_paper_consistency_hmax_larger_under_for():
    blind = hdc_max_blocks(8, 1024, rmin_blind(128, 1024, 27))
    fo = hdc_max_blocks(8, 1024, rmin_for(128, 4.0))
    assert fo > blind


def test_validation_errors():
    with pytest.raises(ConfigError):
        rmin_blind(0, 1024, 27)
    with pytest.raises(ConfigError):
        rmin_for(128, 0)
    with pytest.raises(ConfigError):
        hdc_max_blocks(8, 1024, -1.0)
