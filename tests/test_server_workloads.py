"""Server workload generators: statistical targets from §6.3."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.fileserver import FileServerSpec, FileServerWorkload
from repro.workloads.proxy import ProxyServerSpec, ProxyServerWorkload
from repro.workloads.trace import count_block_accesses
from repro.workloads.webserver import WebServerSpec, WebServerWorkload

SCALE = 0.01  # tiny but statistically meaningful


@pytest.fixture(scope="module")
def web():
    return WebServerWorkload(WebServerSpec(scale=SCALE)).build()


@pytest.fixture(scope="module")
def proxy():
    return ProxyServerWorkload(ProxyServerSpec(scale=SCALE)).build()


@pytest.fixture(scope="module")
def fileserver():
    return FileServerWorkload(FileServerSpec(scale=SCALE)).build()


class TestWebServer:
    def test_scale_validation(self):
        with pytest.raises(WorkloadError):
            WebServerSpec(scale=0.0).validate()
        with pytest.raises(WorkloadError):
            WebServerSpec(scale=2.0).validate()

    def test_write_fraction_near_paper(self, web):
        _, trace = web
        assert 0.005 < trace.write_fraction < 0.08  # paper: 2%

    def test_records_stay_within_layout(self, web):
        layout, trace = web
        top = max(max(s + n for s, n in r.runs) for r in trace)
        assert top <= layout.total_blocks

    def test_popularity_is_flattened_by_buffer_cache(self, web):
        """Disk-trace hottest block must be orders below request count."""
        _, trace = web
        counts = count_block_accesses(trace)
        hottest = max(counts.values())
        server_requests = trace.meta.extra["server_requests"]
        assert hottest < server_requests / 25

    def test_stream_count_is_16(self, web):
        _, trace = web
        assert trace.meta.n_streams == 16

    def test_deterministic(self):
        spec = WebServerSpec(scale=0.002)
        _, a = WebServerWorkload(spec).build()
        _, b = WebServerWorkload(spec).build()
        assert list(a) == list(b)


class TestProxy:
    def test_write_fraction_near_paper(self, proxy):
        _, trace = proxy
        assert 0.08 < trace.write_fraction < 0.40  # paper: 19%

    def test_proxy_miss_rate_recorded(self, proxy):
        _, trace = proxy
        assert 0.0 < trace.meta.extra["proxy_miss_rate"] < 1.0

    def test_mean_object_smaller_than_web(self, proxy, web):
        _, ptrace = proxy
        _, wtrace = web
        p_layout_mean = ptrace.meta.footprint_blocks / ptrace.meta.n_files
        w_layout_mean = wtrace.meta.footprint_blocks / wtrace.meta.n_files
        assert p_layout_mean < w_layout_mean  # 8.3 KB vs 21.5 KB

    def test_streams_128(self, proxy):
        _, trace = proxy
        assert trace.meta.n_streams == 128


class TestFileServer:
    def test_write_fraction_merged_down(self, fileserver):
        """Write-back merging: 34% server writes -> ~20-40% of disk log."""
        _, trace = fileserver
        assert 0.1 < trace.write_fraction < 0.45

    def test_footprint_is_largest(self, fileserver, web):
        _, ftrace = fileserver
        _, wtrace = web
        f_mean = ftrace.meta.footprint_blocks / ftrace.meta.n_files
        w_mean = wtrace.meta.footprint_blocks / wtrace.meta.n_files
        assert f_mean > 5 * w_mean  # ~550 KB vs ~21.5 KB files

    def test_partial_accesses_are_small(self, fileserver):
        _, trace = fileserver
        read_blocks = [r.n_blocks for r in trace if not r.is_write]
        avg = sum(read_blocks) / len(read_blocks)
        assert avg <= 8  # prefetch window bounds reads

    def test_buffer_cache_scale_boost(self):
        small = FileServerSpec(scale=0.01)
        assert small.buffer_cache_blocks * small.block_size >= 30 * 1024 * 1024

    def test_bad_specs(self):
        with pytest.raises(WorkloadError):
            FileServerSpec(scale=0).validate()
        with pytest.raises(WorkloadError):
            FileServerSpec(sequential_prob=1.5).validate()


class TestCrossServerProperties:
    def test_all_traces_nonempty(self, web, proxy, fileserver):
        for _, trace in (web, proxy, fileserver):
            assert len(trace) > 100

    def test_coalesce_prob_is_87_percent(self, web, proxy, fileserver):
        for _, trace in (web, proxy, fileserver):
            assert trace.meta.coalesce_prob == pytest.approx(0.87)
