"""Error paths and failure injection across module boundaries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ArrayParams, make_config
from repro.controller.commands import DiskCommand
from repro.errors import (
    AddressError,
    CacheError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.sim.engine import Simulator
from repro.units import KB
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (AddressError, CacheError, SimulationError, WorkloadError):
            assert issubclass(exc, ReproError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise AddressError("x")


class TestCommandValidation:
    def test_zero_blocks(self):
        with pytest.raises(SimulationError):
            DiskCommand(0, 0, 0)

    def test_negative_start(self):
        with pytest.raises(SimulationError):
            DiskCommand(0, -1, 4)

    def test_blocks_range(self):
        cmd = DiskCommand(0, 10, 3)
        assert list(cmd.blocks()) == [10, 11, 12]
        assert cmd.end_block == 13


class TestSimulatorGuards:
    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestReplayFailureInjection:
    def test_trace_addressing_outside_array_fails_fast(self, small_config):
        system = System(small_config)
        bad = Trace(
            [DiskAccess([(system.striping.total_blocks - 1, 8)])],
            TraceMeta(n_streams=1, coalesce_prob=1.0),
        )
        driver = ReplayDriver(system, bad)
        with pytest.raises(AddressError):
            driver.run()

    def test_replay_detects_stall(self, small_config):
        """A record that never completes must raise, not hang."""
        system = System(small_config)
        trace = Trace(
            [DiskAccess([(0, 1)])], TraceMeta(n_streams=1, coalesce_prob=1.0)
        )
        driver = ReplayDriver(system, trace)
        # sabotage: swallow the completion by replacing the controller
        # submit with a no-op
        system.array.controllers[0].submit = lambda cmd: None
        with pytest.raises(WorkloadError, match="stalled"):
            driver.run()

    def test_pin_capacity_overflow_raises(self, small_config):
        config = small_config.with_(hdc_bytes=8 * KB)  # 2 blocks
        system = System(config)
        with pytest.raises(CacheError):
            system.controllers[0].pin_blocks([0, 1, 2])


class TestPropertyReplay:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_records=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_traces_always_complete(self, seed, n_records):
        """Any well-formed trace replays to completion with conserved
        record counts — no deadlocks, double completions or lost I/O."""
        import numpy as np

        config = make_config(
            disk=__import__("repro.config", fromlist=["DiskParams"]).DiskParams(
                capacity_bytes=64 * 1024 * 1024
            ),
            cache=__import__("repro.config", fromlist=["CacheParams"]).CacheParams(
                size_bytes=256 * KB,
                segment_size_bytes=32 * KB,
                n_segments=8,
            ),
            array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
            seed=seed,
        )
        system = System(config)
        rng = np.random.default_rng(seed)
        records = []
        limit = system.striping.total_blocks - 64
        for _ in range(n_records):
            start = int(rng.integers(0, limit))
            length = int(rng.integers(1, 32))
            records.append(
                DiskAccess([(start, length)], is_write=bool(rng.random() < 0.3))
            )
        trace = Trace(records, TraceMeta(n_streams=4, coalesce_prob=0.8))
        driver = ReplayDriver(system, trace)
        elapsed = driver.run()
        assert elapsed > 0
        assert driver.records_completed == n_records
        stats = system.array.controller_stats()
        assert stats.blocks_requested <= trace.total_blocks
