"""Segment-organized controller cache."""

import numpy as np
import pytest

from repro.cache.segment import SegmentCache
from repro.config import SegmentPolicy
from repro.errors import CacheError


@pytest.fixture
def cache():
    return SegmentCache(n_segments=3, segment_blocks=4)


def test_rejects_degenerate_sizes():
    with pytest.raises(CacheError):
        SegmentCache(n_segments=0, segment_blocks=4)
    with pytest.raises(CacheError):
        SegmentCache(n_segments=2, segment_blocks=0)


def test_fill_then_hit(cache):
    cache.fill([10, 11, 12, 13], stream_hint=0)
    assert cache.missing([10, 11, 12, 13]) == []
    assert cache.stats.block_hits == 4


def test_missing_reports_absent_blocks(cache):
    cache.fill([10, 11], stream_hint=0)
    assert cache.missing([10, 11, 12]) == [12]
    assert cache.stats.block_misses == 1


def test_whole_segment_replacement(cache):
    """Evicting drops every block of the victim segment at once."""
    for stream, base in enumerate((0, 100, 200)):
        cache.fill([base, base + 1], stream_hint=stream)
    assert cache.segments_in_use == 3
    cache.fill([300, 301], stream_hint=9)
    # Segment of stream 0 (LRU) is fully gone.
    assert cache.peek([0, 1]) == [0, 1]
    assert cache.peek([300, 301]) == []
    assert cache.stats.evictions == 1


def test_lru_victim_is_least_recently_touched(cache):
    cache.fill([0, 1], stream_hint=0)
    cache.fill([100, 101], stream_hint=1)
    cache.fill([200, 201], stream_hint=2)
    cache.access([0])  # refresh stream 0's segment
    cache.fill([300], stream_hint=3)
    assert cache.contains(0)  # refreshed survives
    assert not cache.contains(100)  # stream 1 was the LRU victim


def test_stream_reuses_its_own_segment(cache):
    cache.fill([0, 1], stream_hint=5)
    cache.fill([50, 51], stream_hint=5)
    assert cache.segments_in_use == 1
    assert not cache.contains(0)
    assert cache.contains(50)


def test_long_fill_splits_across_segments(cache):
    run = list(range(10))  # 10 blocks > segment_blocks=4
    cache.fill(run, stream_hint=-1)
    # 3 chunks of <=4 blocks; all fit in 3 segments.
    assert cache.segments_in_use == 3
    assert cache.missing(run) == []


def test_fifo_policy_evicts_oldest_created():
    cache = SegmentCache(2, 2, policy=SegmentPolicy.FIFO)
    cache.fill([0], stream_hint=0)
    cache.fill([10], stream_hint=1)
    cache.access([0])  # touching does NOT save a FIFO victim
    cache.fill([20], stream_hint=2)
    assert not cache.contains(0)
    assert cache.contains(10)


def test_round_robin_policy_cycles():
    cache = SegmentCache(2, 2, policy=SegmentPolicy.ROUND_ROBIN)
    cache.fill([0], stream_hint=0)
    cache.fill([10], stream_hint=1)
    cache.fill([20], stream_hint=2)
    cache.fill([30], stream_hint=3)
    # two evictions happened; both original segments cycled out
    assert not cache.contains(0)
    assert not cache.contains(10)


def test_random_policy_uses_rng():
    rng = np.random.default_rng(0)
    cache = SegmentCache(2, 2, policy=SegmentPolicy.RANDOM, rng=rng)
    cache.fill([0], stream_hint=0)
    cache.fill([10], stream_hint=1)
    cache.fill([20], stream_hint=2)
    assert cache.segments_in_use == 2


def test_useless_eviction_accounting(cache):
    cache.fill([0, 1, 2, 3], stream_hint=0)
    cache.access([0, 1])  # two of four consumed
    cache.fill([100], stream_hint=1)
    cache.fill([200], stream_hint=2)
    cache.fill([300], stream_hint=3)  # evicts stream 0's segment
    assert cache.stats.useless_evictions == 2


def test_invalidate_removes_single_block(cache):
    cache.fill([0, 1, 2], stream_hint=0)
    cache.invalidate(1)
    assert not cache.contains(1)
    assert cache.contains(0)
    assert cache.contains(2)


def test_invalidate_last_block_drops_segment(cache):
    cache.fill([7], stream_hint=0)
    cache.invalidate(7)
    assert cache.segments_in_use == 0


def test_invalidate_emptied_segment_accounts_eviction(cache):
    """Regression: draining a segment via invalidate() must route
    through the normal drop path — eviction stats and the
    ``cache.evict`` tracer instant used to be silently skipped."""
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    cache.attach_tracer(tracer, "t")
    cache.fill([7, 8], stream_hint=0)
    cache.access([7])
    cache.invalidate(7)
    assert cache.stats.evictions == 0  # segment still holds block 8
    cache.invalidate(8)
    assert cache.segments_in_use == 0
    assert cache.stats.evictions == 1
    # Invalidated blocks left one at a time are not *evicted* unused —
    # pollution accounting stays clean, but the drop itself is visible.
    assert cache.stats.useless_evictions == 0
    evicts = [e for e in tracer.events if e[3] == "cache.evict"]
    assert len(evicts) == 1
    assert evicts[0][7]["stream"] == 0


def test_invalidate_emptied_segment_frees_slot_and_stream(cache):
    """The drained segment's slot and stream binding are fully
    released: the stream gets a fresh segment and no stale slot keeps
    a later victim search alive."""
    cache.fill([7], stream_hint=0)
    cache.invalidate(7)
    # The stream's binding is gone: a new fill allocates cleanly ...
    cache.fill([20, 21], stream_hint=0)
    assert cache.segments_in_use == 1
    assert cache.contains(20)
    # ... and capacity accounting is exact: three more streams force
    # exactly one replacement eviction (the cache has 3 segments; the
    # earlier invalidate-drop already counted one eviction).
    cache.fill([30], stream_hint=1)
    cache.fill([40], stream_hint=2)
    cache.fill([50], stream_hint=3)
    assert cache.segments_in_use == 3
    assert cache.stats.evictions == 2


def test_duplicate_fill_is_idempotent(cache):
    cache.fill([1, 2], stream_hint=0)
    cache.fill([1, 2], stream_hint=1)
    assert len(cache) == 2


def test_len_counts_blocks(cache):
    cache.fill([0, 1, 2], stream_hint=0)
    assert len(cache) == 3
