"""Record-level latency collection and percentiles."""

import random
from bisect import bisect_left

import pytest

from repro import SEGM, FOR, SyntheticSpec, SyntheticWorkload, TechniqueRunner
from repro import ultrastar_36z15_config
from repro.cache.base import CacheStats
from repro.controller.stats import ControllerStats
from repro.metrics.collector import RunResult
from repro.obs.metrics import Histogram, default_latency_buckets_ms
from repro.units import KB


def make_result(latencies):
    return RunResult(
        io_time_ms=100.0,
        records=len(latencies),
        commands=len(latencies),
        blocks_requested=len(latencies),
        block_size=4096,
        controller=ControllerStats(),
        cache=CacheStats(),
        record_latencies_ms=latencies,
    )


class TestPercentiles:
    def test_median_of_known_values(self):
        result = make_result([1.0, 2.0, 3.0, 4.0])
        assert result.latency_percentile(50) == 2.0
        assert result.latency_percentile(100) == 4.0

    def test_mean(self):
        assert make_result([1.0, 3.0]).mean_latency_ms == 2.0

    def test_empty_is_zero(self):
        assert make_result([]).latency_percentile(99) == 0.0
        assert make_result([]).mean_latency_ms == 0.0

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            make_result([1.0]).latency_percentile(0)
        with pytest.raises(ValueError):
            make_result([1.0]).latency_percentile(101)

    def test_percentiles_monotone(self):
        result = make_result(list(range(100, 0, -1)))
        p50 = result.latency_percentile(50)
        p95 = result.latency_percentile(95)
        p99 = result.latency_percentile(99)
        assert p50 <= p95 <= p99


class TestReplayLatencies:
    @pytest.fixture(scope="class")
    def results(self):
        spec = SyntheticSpec(n_requests=400, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        config = ultrastar_36z15_config()
        return runner.run(config, SEGM), runner.run(config, FOR)

    def test_every_record_has_a_latency(self, results):
        segm, _ = results
        assert len(segm.record_latencies_ms) == segm.records

    def test_latencies_positive_and_bounded(self, results):
        segm, _ = results
        assert min(segm.record_latencies_ms) > 0
        assert max(segm.record_latencies_ms) <= segm.io_time_ms

    def test_for_improves_tail_latency_too(self, results):
        segm, fo = results
        assert fo.latency_percentile(95) < segm.latency_percentile(95)
        assert fo.mean_latency_ms < segm.mean_latency_ms

    def test_histogram_always_populated(self, results):
        segm, _ = results
        assert segm.latency_histogram is not None
        assert segm.latency_histogram.count == segm.records
        assert segm.latency_histogram.sum == pytest.approx(
            sum(segm.record_latencies_ms)
        )


class TestHistogramFallback:
    @pytest.fixture(scope="class")
    def results(self):
        spec = SyntheticSpec(n_requests=400, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        config = ultrastar_36z15_config()
        full = runner.run(config, SEGM)
        compact = runner.run(config, SEGM, keep_raw_latencies=False)
        return full, compact

    def test_raw_list_dropped_but_histogram_kept(self, results):
        full, compact = results
        assert compact.record_latencies_ms == []
        assert compact.latency_histogram == full.latency_histogram
        assert compact.latency_histogram.count == compact.records

    def test_percentiles_fall_back_to_histogram(self, results):
        full, compact = results
        for p in (50, 95, 99):
            exact = full.latency_percentile(p)
            estimate = compact.latency_percentile(p)
            assert estimate > 0
            # Bucket-granular estimate: same 1-2.5-5 decade bucket, so
            # within 2.5x of the exact rank statistic either way.
            assert exact / 2.5 <= estimate <= exact * 2.5

    def test_mean_falls_back_to_histogram(self, results):
        full, compact = results
        assert compact.mean_latency_ms == pytest.approx(full.mean_latency_ms)

    def test_differential_vs_exact_nearest_rank(self):
        """Randomized differential check of ``Histogram.percentile``
        against the exact nearest-rank statistic over the raw samples:
        the estimate must land inside the bucket containing the exact
        value, clamped to ``[min, max]`` of the observed data."""
        bounds = default_latency_buckets_ms()
        percentiles = (1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0)
        for seed in range(20):
            rng = random.Random(seed)
            n = rng.randrange(1, 400)
            # Log-uniform over the bucket ladder's full dynamic range,
            # occasionally past the last bound (overflow bucket).
            samples = [10.0 ** rng.uniform(-3, 5.5) for _ in range(n)]
            hist = Histogram(bounds)
            hist.observe_many(samples)
            ordered = sorted(samples)
            for p in percentiles:
                rank = max(1, int(round(p / 100.0 * n)))
                exact = ordered[rank - 1]
                estimate = hist.percentile(p)
                # Clamped to the observed range...
                assert hist.min <= estimate <= hist.max, (seed, p)
                # ...and inside the bucket that contains the exact
                # nearest-rank value (bucket-granular accuracy).
                i = bisect_left(bounds, exact)
                lo = 0.0 if i == 0 else bounds[i - 1]
                hi = hist.max if i >= len(bounds) else bounds[i]
                assert lo <= estimate <= max(hi, hist.max), (seed, p, exact)

    def test_differential_single_bucket(self):
        """All mass in one bucket: the estimate interpolates inside it
        and never leaves the observed [min, max] envelope."""
        for seed in range(5):
            rng = random.Random(100 + seed)
            samples = [rng.uniform(10.0, 24.9) for _ in range(50)]
            hist = Histogram((25.0,))  # one finite bucket holds everything
            hist.observe_many(samples)
            ordered = sorted(samples)
            for p in (1.0, 50.0, 99.0):
                rank = max(1, int(round(p / 100.0 * len(samples))))
                exact = ordered[rank - 1]
                estimate = hist.percentile(p)
                assert hist.min <= estimate <= hist.max
                # Same (single) bucket as the exact statistic, trivially.
                assert 0.0 <= estimate <= 25.0
                assert abs(estimate - exact) <= hist.max - hist.min

    def test_differential_overflow_bucket_reports_max(self):
        """Ranks landing in the implicit overflow bucket report the
        exact observed max — there is no upper bound to interpolate to."""
        rng = random.Random(7)
        inside = [rng.uniform(0.1, 9.9) for _ in range(10)]
        beyond = [rng.uniform(100.0, 5000.0) for _ in range(40)]
        hist = Histogram((10.0,))
        hist.observe_many(inside + beyond)
        assert hist.percentile(99.0) == max(beyond)
        assert hist.percentile(100.0) == max(beyond)
        # A rank inside the finite bucket still interpolates below it.
        assert hist.percentile(10.0) <= 10.0

    def test_defensive_tail_returns_max(self):
        """The post-loop return (metrics.py defensive tail) is
        unreachable through consistent state; force an inconsistent
        count to pin its behaviour: it reports ``max``, never raises."""
        hist = Histogram((10.0, 20.0))
        hist.observe_many([5.0, 15.0])
        hist.count = 10  # rank now exceeds the bucket counts' total
        assert hist.percentile(100.0) == hist.max

    def test_synthetic_histogram_fallback(self):
        hist = Histogram(default_latency_buckets_ms())
        hist.observe_many([1.0, 2.0, 3.0, 4.0])
        result = RunResult(
            io_time_ms=100.0,
            records=4,
            commands=4,
            blocks_requested=4,
            block_size=4096,
            controller=ControllerStats(),
            cache=CacheStats(),
            latency_histogram=hist,
        )
        assert result.mean_latency_ms == pytest.approx(2.5)
        assert result.latency_percentile(100) <= 4.0
        assert result.latency_percentile(50) > 0
