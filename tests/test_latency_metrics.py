"""Record-level latency collection and percentiles."""

import pytest

from repro import SEGM, FOR, SyntheticSpec, SyntheticWorkload, TechniqueRunner
from repro import ultrastar_36z15_config
from repro.cache.base import CacheStats
from repro.controller.stats import ControllerStats
from repro.metrics.collector import RunResult
from repro.units import KB


def make_result(latencies):
    return RunResult(
        io_time_ms=100.0,
        records=len(latencies),
        commands=len(latencies),
        blocks_requested=len(latencies),
        block_size=4096,
        controller=ControllerStats(),
        cache=CacheStats(),
        record_latencies_ms=latencies,
    )


class TestPercentiles:
    def test_median_of_known_values(self):
        result = make_result([1.0, 2.0, 3.0, 4.0])
        assert result.latency_percentile(50) == 2.0
        assert result.latency_percentile(100) == 4.0

    def test_mean(self):
        assert make_result([1.0, 3.0]).mean_latency_ms == 2.0

    def test_empty_is_zero(self):
        assert make_result([]).latency_percentile(99) == 0.0
        assert make_result([]).mean_latency_ms == 0.0

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            make_result([1.0]).latency_percentile(0)
        with pytest.raises(ValueError):
            make_result([1.0]).latency_percentile(101)

    def test_percentiles_monotone(self):
        result = make_result(list(range(100, 0, -1)))
        p50 = result.latency_percentile(50)
        p95 = result.latency_percentile(95)
        p99 = result.latency_percentile(99)
        assert p50 <= p95 <= p99


class TestReplayLatencies:
    @pytest.fixture(scope="class")
    def results(self):
        spec = SyntheticSpec(n_requests=400, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        config = ultrastar_36z15_config()
        return runner.run(config, SEGM), runner.run(config, FOR)

    def test_every_record_has_a_latency(self, results):
        segm, _ = results
        assert len(segm.record_latencies_ms) == segm.records

    def test_latencies_positive_and_bounded(self, results):
        segm, _ = results
        assert min(segm.record_latencies_ms) > 0
        assert max(segm.record_latencies_ms) <= segm.io_time_ms

    def test_for_improves_tail_latency_too(self, results):
        segm, fo = results
        assert fo.latency_percentile(95) < segm.latency_percentile(95)
        assert fo.mean_latency_ms < segm.mean_latency_ms
