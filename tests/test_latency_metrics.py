"""Record-level latency collection and percentiles."""

import pytest

from repro import SEGM, FOR, SyntheticSpec, SyntheticWorkload, TechniqueRunner
from repro import ultrastar_36z15_config
from repro.cache.base import CacheStats
from repro.controller.stats import ControllerStats
from repro.metrics.collector import RunResult
from repro.obs.metrics import Histogram, default_latency_buckets_ms
from repro.units import KB


def make_result(latencies):
    return RunResult(
        io_time_ms=100.0,
        records=len(latencies),
        commands=len(latencies),
        blocks_requested=len(latencies),
        block_size=4096,
        controller=ControllerStats(),
        cache=CacheStats(),
        record_latencies_ms=latencies,
    )


class TestPercentiles:
    def test_median_of_known_values(self):
        result = make_result([1.0, 2.0, 3.0, 4.0])
        assert result.latency_percentile(50) == 2.0
        assert result.latency_percentile(100) == 4.0

    def test_mean(self):
        assert make_result([1.0, 3.0]).mean_latency_ms == 2.0

    def test_empty_is_zero(self):
        assert make_result([]).latency_percentile(99) == 0.0
        assert make_result([]).mean_latency_ms == 0.0

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            make_result([1.0]).latency_percentile(0)
        with pytest.raises(ValueError):
            make_result([1.0]).latency_percentile(101)

    def test_percentiles_monotone(self):
        result = make_result(list(range(100, 0, -1)))
        p50 = result.latency_percentile(50)
        p95 = result.latency_percentile(95)
        p99 = result.latency_percentile(99)
        assert p50 <= p95 <= p99


class TestReplayLatencies:
    @pytest.fixture(scope="class")
    def results(self):
        spec = SyntheticSpec(n_requests=400, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        config = ultrastar_36z15_config()
        return runner.run(config, SEGM), runner.run(config, FOR)

    def test_every_record_has_a_latency(self, results):
        segm, _ = results
        assert len(segm.record_latencies_ms) == segm.records

    def test_latencies_positive_and_bounded(self, results):
        segm, _ = results
        assert min(segm.record_latencies_ms) > 0
        assert max(segm.record_latencies_ms) <= segm.io_time_ms

    def test_for_improves_tail_latency_too(self, results):
        segm, fo = results
        assert fo.latency_percentile(95) < segm.latency_percentile(95)
        assert fo.mean_latency_ms < segm.mean_latency_ms

    def test_histogram_always_populated(self, results):
        segm, _ = results
        assert segm.latency_histogram is not None
        assert segm.latency_histogram.count == segm.records
        assert segm.latency_histogram.sum == pytest.approx(
            sum(segm.record_latencies_ms)
        )


class TestHistogramFallback:
    @pytest.fixture(scope="class")
    def results(self):
        spec = SyntheticSpec(n_requests=400, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        runner = TechniqueRunner(layout, trace)
        config = ultrastar_36z15_config()
        full = runner.run(config, SEGM)
        compact = runner.run(config, SEGM, keep_raw_latencies=False)
        return full, compact

    def test_raw_list_dropped_but_histogram_kept(self, results):
        full, compact = results
        assert compact.record_latencies_ms == []
        assert compact.latency_histogram == full.latency_histogram
        assert compact.latency_histogram.count == compact.records

    def test_percentiles_fall_back_to_histogram(self, results):
        full, compact = results
        for p in (50, 95, 99):
            exact = full.latency_percentile(p)
            estimate = compact.latency_percentile(p)
            assert estimate > 0
            # Bucket-granular estimate: same 1-2.5-5 decade bucket, so
            # within 2.5x of the exact rank statistic either way.
            assert exact / 2.5 <= estimate <= exact * 2.5

    def test_mean_falls_back_to_histogram(self, results):
        full, compact = results
        assert compact.mean_latency_ms == pytest.approx(full.mean_latency_ms)

    def test_synthetic_histogram_fallback(self):
        hist = Histogram(default_latency_buckets_ms())
        hist.observe_many([1.0, 2.0, 3.0, 4.0])
        result = RunResult(
            io_time_ms=100.0,
            records=4,
            commands=4,
            blocks_requested=4,
            block_size=4096,
            controller=ControllerStats(),
            cache=CacheStats(),
            latency_histogram=hist,
        )
        assert result.mean_latency_ms == pytest.approx(2.5)
        assert result.latency_percentile(100) <= 4.0
        assert result.latency_percentile(50) > 0
