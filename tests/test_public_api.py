"""The public API surface: everything in ``__all__`` imports and works."""

import importlib

import pytest

import repro


def test_version_is_exposed():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"{name} missing from repro namespace"


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.geometry",
        "repro.mechanics",
        "repro.cache",
        "repro.readahead",
        "repro.scheduling",
        "repro.controller",
        "repro.disk",
        "repro.bus",
        "repro.array",
        "repro.fs",
        "repro.oscache",
        "repro.hdc",
        "repro.host",
        "repro.workloads",
        "repro.ingest",
        "repro.loadgen",
        "repro.analysis",
        "repro.metrics",
        "repro.obs",
        "repro.experiments",
        "repro.perfkit",
    ],
)
def test_every_subpackage_imports(module):
    assert importlib.import_module(module)


def test_quickstart_from_module_docstring_runs():
    """The __init__ docstring's example must actually work."""
    from repro import (
        FOR,
        SEGM,
        SyntheticSpec,
        SyntheticWorkload,
        TechniqueRunner,
        ultrastar_36z15_config,
    )

    layout, trace = SyntheticWorkload(SyntheticSpec(n_requests=100)).build()
    runner = TechniqueRunner(layout, trace)
    config = ultrastar_36z15_config()
    base = runner.run(config, SEGM)
    fancy = runner.run(config, FOR)
    assert fancy.speedup_vs(base) > 0


def test_public_docstrings_present():
    """Every public class/function in __all__ carries a docstring."""
    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, type) and obj.__doc__ is None:
            missing.append(name)
        if isinstance(obj, type) and not obj.__doc__:
            missing.append(name)
    assert not missing, f"missing docstrings: {missing}"
