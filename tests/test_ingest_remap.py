"""Address remapping and layout inference from ingested traces."""

import pytest

from repro.array.striping import StripingLayout
from repro.errors import WorkloadError
from repro.fs.bitmap_builder import build_bitmaps
from repro.ingest import AddressRemapper, infer_layout, scan_bounds
from repro.workloads.trace import DiskAccess, TimedAccess


def acc(start, length, write=False):
    return DiskAccess([(start, length)], write)


class TestScanBounds:
    def test_bounds(self):
        records = [acc(100, 10), acc(5, 2), acc(400, 50)]
        assert scan_bounds(records) == (5, 450)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError, match="empty"):
            scan_bounds([])


class TestFold:
    def test_identity_within_range(self):
        remapper = AddressRemapper(1000, mode="fold")
        assert remapper.map_run(10, 5) == [(10, 5)]

    def test_wraps_and_splits_at_capacity(self):
        remapper = AddressRemapper(1000, mode="fold")
        assert remapper.map_run(2995, 10) == [(995, 5), (0, 5)]

    def test_oversized_run_truncates_to_array(self):
        remapper = AddressRemapper(100, mode="fold")
        assert remapper.map_run(0, 250) == [(0, 100)]

    def test_preserves_timestamp_and_kind(self):
        remapper = AddressRemapper(1000, mode="fold")
        mapped = remapper.map_record(TimedAccess([(1500, 4)], True, 7.5))
        assert isinstance(mapped, TimedAccess)
        assert mapped.timestamp_ms == 7.5
        assert mapped.is_write
        assert mapped.runs == ((500, 4),)

    def test_untimed_stays_untimed(self):
        remapper = AddressRemapper(1000, mode="fold")
        mapped = remapper.map_record(acc(1500, 4))
        assert not isinstance(mapped, TimedAccess)


class TestScale:
    def test_requires_bounds(self):
        with pytest.raises(WorkloadError, match="source_bounds"):
            AddressRemapper(1000, mode="scale")

    def test_compresses_span_linearly(self):
        remapper = AddressRemapper(
            1000, mode="scale", source_bounds=(0, 10_000)
        )
        assert remapper.map_run(5000, 4) == [(500, 4)]
        assert remapper.map_run(9999, 4) == [(996, 4)]  # clamped to fit

    def test_small_span_only_shifts(self):
        remapper = AddressRemapper(
            1000, mode="scale", source_bounds=(200, 700)
        )
        assert remapper.map_run(300, 8) == [(100, 8)]


class TestNone:
    def test_validates_range(self):
        remapper = AddressRemapper(1000, mode="none")
        assert remapper.map_run(10, 5) == [(10, 5)]
        with pytest.raises(WorkloadError, match="outside"):
            remapper.map_run(998, 5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(WorkloadError, match="unknown remap mode"):
            AddressRemapper(1000, mode="wrap")


class TestInferLayout:
    def test_gap_tolerant_merge(self):
        records = [acc(0, 4), acc(6, 4), acc(100, 8)]
        layout = infer_layout(records, 1000, file_gap_blocks=2)
        sizes = sorted(f.size_blocks for f in layout.files)
        assert sizes == [8, 10]  # [0,10) bridged the 2-block gap

    def test_gap_zero_keeps_regions_apart(self):
        records = [acc(0, 4), acc(6, 4)]
        layout = infer_layout(records, 1000, file_gap_blocks=0)
        assert len(layout.files) == 2

    def test_max_file_blocks_splits(self):
        layout = infer_layout([acc(0, 100)], 1000, max_file_blocks=32)
        assert sorted(f.size_blocks for f in layout.files) == [4, 32, 32, 32]

    def test_out_of_range_trace_rejected(self):
        with pytest.raises(WorkloadError, match="remap"):
            infer_layout([acc(2000, 8)], 1000)

    def test_bitmaps_build_from_inferred_layout(self):
        records = [acc(0, 64), acc(128, 32), acc(512, 16)]
        layout = infer_layout(records, 1024)
        striping = StripingLayout(2, 4, 512)
        bitmaps = build_bitmaps(layout, striping)
        assert len(bitmaps) == 2
        # A mid-file unit continues sequentially; file tails stop.
        assert any(b.ones() > 0 for b in bitmaps)
