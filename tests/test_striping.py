"""Striping layout: logical-physical mapping and run splitting."""

import pytest
from hypothesis import given, strategies as st

from repro.array.striping import StripingLayout
from repro.errors import AddressError, ConfigError


@pytest.fixture
def layout():
    # 4 disks, 8-block units, 1024 blocks per disk
    return StripingLayout(n_disks=4, unit_blocks=8, disk_blocks=1024)


class TestConstruction:
    def test_rejects_degenerate(self):
        with pytest.raises(ConfigError):
            StripingLayout(0, 8, 100)
        with pytest.raises(ConfigError):
            StripingLayout(4, 0, 100)
        with pytest.raises(ConfigError):
            StripingLayout(4, 8, 0)


class TestLocate:
    def test_round_robin_units(self, layout):
        assert layout.locate(0) == (0, 0)
        assert layout.locate(7) == (0, 7)
        assert layout.locate(8) == (1, 0)
        assert layout.locate(16) == (2, 0)
        assert layout.locate(24) == (3, 0)
        assert layout.locate(32) == (0, 8)  # wraps back to disk 0

    def test_bounds(self, layout):
        with pytest.raises(AddressError):
            layout.locate(-1)
        with pytest.raises(AddressError):
            layout.locate(layout.total_blocks)

    def test_inverse_bounds(self, layout):
        with pytest.raises(AddressError):
            layout.logical_of(4, 0)
        with pytest.raises(AddressError):
            layout.logical_of(0, 1024)

    @given(st.integers(min_value=0, max_value=4 * 1024 - 1))
    def test_locate_roundtrip(self, lb):
        layout = StripingLayout(4, 8, 1024)
        disk, phys = layout.locate(lb)
        assert layout.logical_of(disk, phys) == lb


class TestMapRun:
    def test_within_one_unit(self, layout):
        runs = layout.map_run(2, 4)
        assert len(runs) == 1
        assert (runs[0].disk, runs[0].start, runs[0].n_blocks) == (0, 2, 4)

    def test_split_at_unit_boundary(self, layout):
        runs = layout.map_run(6, 4)
        assert [(r.disk, r.start, r.n_blocks) for r in runs] == [
            (0, 6, 2),
            (1, 0, 2),
        ]

    def test_large_run_covers_all_disks(self, layout):
        runs = layout.map_run(0, 32)
        assert [r.disk for r in runs] == [0, 1, 2, 3]
        assert all(r.n_blocks == 8 for r in runs)

    def test_wraparound_merges_on_single_disk(self):
        solo = StripingLayout(1, 8, 1024)
        runs = solo.map_run(4, 20)
        assert len(runs) == 1
        assert runs[0].n_blocks == 20

    def test_run_longer_than_stripe_produces_multiple_runs_per_disk(self, layout):
        runs = layout.map_run(0, 64)
        disk0_runs = [r for r in runs if r.disk == 0]
        assert len(disk0_runs) == 2
        assert disk0_runs[1].start == 8

    def test_bad_run_rejected(self, layout):
        with pytest.raises(AddressError):
            layout.map_run(0, 0)
        with pytest.raises(AddressError):
            layout.map_run(layout.total_blocks - 1, 2)

    @given(
        start=st.integers(min_value=0, max_value=4000),
        n=st.integers(min_value=1, max_value=96),
    )
    def test_map_run_partitions_exactly(self, start, n):
        """The runs partition the logical range block-for-block."""
        layout = StripingLayout(4, 8, 1024)
        if start + n > layout.total_blocks:
            n = layout.total_blocks - start
            if n == 0:
                return
        runs = layout.map_run(start, n)
        mapped = []
        for run in runs:
            for i in range(run.n_blocks):
                mapped.append(layout.logical_of(run.disk, run.start + i))
        assert sorted(mapped) == list(range(start, start + n))

    def test_iter_unit_fragments_no_merge(self):
        solo = StripingLayout(1, 8, 1024)
        frags = list(solo.iter_unit_fragments(4, 20))
        assert [f.n_blocks for f in frags] == [4, 8, 8]
