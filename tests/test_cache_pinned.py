"""HDC pinned region: pin/unpin/flush and dirty semantics."""

import pytest

from repro.cache.pinned import PinnedRegion
from repro.errors import CacheError


def test_pin_and_membership():
    region = PinnedRegion(4)
    region.pin(10)
    assert region.is_pinned(10)
    assert 10 in region
    assert len(region) == 1


def test_pin_is_idempotent():
    region = PinnedRegion(2)
    region.pin(1)
    region.pin(1)
    assert len(region) == 1


def test_capacity_enforced():
    region = PinnedRegion(2)
    region.pin_many([1, 2])
    with pytest.raises(CacheError):
        region.pin(3)


def test_negative_capacity_rejected():
    with pytest.raises(CacheError):
        PinnedRegion(-1)


def test_unpin_clean_block():
    region = PinnedRegion(2)
    region.pin(1)
    region.unpin(1)
    assert not region.is_pinned(1)


def test_unpin_unknown_is_noop():
    PinnedRegion(2).unpin(99)


def test_unpin_dirty_refused():
    """A dirty pinned block holds the only up-to-date copy."""
    region = PinnedRegion(2)
    region.pin(1)
    region.write(1)
    with pytest.raises(CacheError):
        region.unpin(1)
    region.flush()
    region.unpin(1)  # clean after flush


def test_write_requires_pin():
    with pytest.raises(CacheError):
        PinnedRegion(2).write(5)


def test_flush_returns_and_clears_dirty():
    region = PinnedRegion(4)
    region.pin_many([1, 2, 3])
    region.write(1)
    region.write(3)
    assert region.dirty_count() == 2
    flushed = region.flush()
    assert sorted(flushed) == [1, 3]
    assert region.dirty_count() == 0
    assert region.flush() == []


def test_blocks_stay_pinned_after_flush():
    region = PinnedRegion(2)
    region.pin(1)
    region.write(1)
    region.flush()
    assert region.is_pinned(1)


def test_hit_accounting():
    region = PinnedRegion(2)
    region.pin(1)
    region.note_read_hit(1)
    region.write(1)
    assert region.hits == 2
    assert region.write_hits == 1


def test_pinned_blocks_listing():
    region = PinnedRegion(4)
    region.pin_many([5, 6])
    assert sorted(region.pinned_blocks()) == [5, 6]
