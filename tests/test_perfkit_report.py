"""Report rendering: golden-diffed smoke report, series reports, CLI."""

import json
from pathlib import Path

from repro.experiments.base import SeriesResult
from repro.perfkit.__main__ import main as perfkit_main
from repro.perfkit.report import (
    markdown_to_html,
    series_report,
    smoke_report,
    smoke_workload,
    trajectory_section,
)

GOLDEN = Path(__file__).parent / "golden" / "perfkit_report_smoke.md"
FIXTURE_TRAJECTORY = Path(__file__).parent / "data" / "perfkit_trajectory.json"


def test_smoke_report_matches_golden_byte_for_byte():
    """The acceptance gate: fixed-seed report is byte-stable."""
    md = smoke_report(scale=0.5, trajectory_path=FIXTURE_TRAJECTORY)
    assert md == GOLDEN.read_text(encoding="utf-8")


def test_smoke_report_has_required_sections():
    md = GOLDEN.read_text(encoding="utf-8")
    assert "## Workload phases" in md
    assert "## Attribution ranking" in md
    assert "## Benchmark trajectory" in md
    assert "## Per-phase media attribution" in md


def test_smoke_workload_is_two_phase_by_construction():
    _layout, trace = smoke_workload(scale=0.5)
    half = len(trace.records) // 2
    assert all(not r.is_write for r in trace.records[:half])
    assert any(r.is_write for r in trace.records[half:])
    ts = [r.timestamp_ms for r in trace.records]
    assert ts == sorted(ts)


def test_trajectory_section_missing_file():
    lines = trajectory_section("does/not/exist.json")
    assert any("no trajectory" in line for line in lines)


def test_series_report_renders_sparklines_and_hook():
    result = SeriesResult(
        exp_id="trace_replay",
        title="demo",
        x_label="technique",
        x_values=["Segm", "FOR"],
        series={"mean_lat_ms": [5.0, 3.0], "cache_hit": [0.4, 0.4]},
    )
    md = series_report(result)
    assert "# perfkit report — trace_replay" in md
    assert "## Sparklines" in md
    # the trace_replay hook ranks FOR (3.0ms) above Segm (5.0ms)
    analysis = md.split("## Experiment analysis")[1]
    assert analysis.index("FOR") < analysis.index("Segm")


def test_series_report_without_hook_omits_analysis():
    result = SeriesResult(
        exp_id="figZZ", title="t", x_label="x", x_values=[1], series={"y": [2.0]}
    )
    md = series_report(result)
    assert "## Experiment analysis" not in md


def test_markdown_to_html_escapes_and_fences():
    html = markdown_to_html("# T<itle\n\n```text\na & b\n```\n\npara <x>\n")
    assert "<h1>T&lt;itle</h1>" in html
    assert "<pre>" in html and "</pre>" in html
    assert "a &amp; b" in html
    assert "<p>para &lt;x&gt;</p>" in html
    assert "<x>" not in html


def test_markdown_to_html_closes_unterminated_fence():
    html = markdown_to_html("```text\ndangling")
    assert html.count("<pre>") == html.count("</pre>") == 1


# -- CLI ---------------------------------------------------------------


def test_cli_report_writes_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    rc = perfkit_main(
        [
            "report",
            "--scale",
            "0.25",
            "--trajectory",
            str(FIXTURE_TRAJECTORY),
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    assert "## Attribution ranking" in out.read_text(encoding="utf-8")


def test_cli_gate_passes_appends_and_fails_on_regression(tmp_path, capsys):
    traj = tmp_path / "traj.json"
    good = tmp_path / "bench.json"
    good.write_text(
        json.dumps(
            {
                "calibration_s": 0.1,
                "scenarios": {"s": {"records_per_s": 1000.0}},
            }
        )
    )
    # seed run: no history, passes, appends
    assert (
        perfkit_main(
            [
                "gate",
                "--bench",
                "sim",
                "--input",
                str(good),
                "--trajectory",
                str(traj),
                "--append",
            ]
        )
        == 0
    )
    assert traj.exists()
    # identical rerun: passes against the seeded history
    assert (
        perfkit_main(
            [
                "gate",
                "--bench",
                "sim",
                "--input",
                str(good),
                "--trajectory",
                str(traj),
                "--append",
            ]
        )
        == 0
    )
    # injected 2x regression: exits 1, does not poison the history
    bad = tmp_path / "bad.json"
    bad.write_text(
        json.dumps(
            {
                "calibration_s": 0.1,
                "scenarios": {"s": {"records_per_s": 500.0}},
            }
        )
    )
    report_md = tmp_path / "gate.md"
    rc = perfkit_main(
        [
            "gate",
            "--bench",
            "sim",
            "--input",
            str(bad),
            "--trajectory",
            str(traj),
            "--append",
            "--report",
            str(report_md),
        ]
    )
    assert rc == 1
    assert "REGRESSED" in report_md.read_text(encoding="utf-8")
    runs = json.loads(traj.read_text())["benches"]["sim"]
    assert len(runs) == 2  # the regressed run was not appended
    assert "REGRESSED" in capsys.readouterr().out


def test_cli_phases_prints_two_phases(capsys):
    assert perfkit_main(["phases", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert out.count("\n") >= 4  # header + rule + 2 phase rows
    assert "write_frac" in out


def test_cli_usage_and_unknown_command(capsys):
    assert perfkit_main([]) == 0
    assert "usage" in capsys.readouterr().out
    assert perfkit_main(["bogus"]) == 2
    assert perfkit_main(["gate", "--bench", "nope"]) == 2


def test_cli_rejects_malformed_invocations(capsys):
    """Strict parsing: typos and dangling flags exit 2 instead of
    being silently ignored (a misconfigured CI gate must not pass
    vacuously)."""
    # unknown flag
    assert perfkit_main(["report", "--seeed", "3"]) == 2
    # flag with its value missing at end-of-args
    assert perfkit_main(["gate", "--bench", "sim", "--input"]) == 2
    assert perfkit_main(["report", "--out"]) == 2
    # required flag absent entirely
    assert perfkit_main(["gate", "--bench", "sim"]) == 2
    capsys.readouterr()


def test_cli_gate_missing_input_file(tmp_path, capsys):
    rc = perfkit_main(
        ["gate", "--bench", "sim", "--input", str(tmp_path / "absent.json")]
    )
    assert rc == 2
    assert "perfkit:" in capsys.readouterr().err
