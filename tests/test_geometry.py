"""LBA-to-physical translation."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DiskParams
from repro.errors import AddressError
from repro.geometry.disk_geometry import DiskGeometry
from repro.units import KB, MB


@pytest.fixture
def geometry():
    return DiskGeometry(DiskParams(capacity_bytes=64 * MB), block_size=4 * KB)


def test_block_size_must_be_sector_multiple():
    with pytest.raises(AddressError):
        DiskGeometry(DiskParams(), block_size=1000)


def test_counts_are_consistent(geometry):
    assert geometry.sectors_per_block == 8
    assert geometry.blocks_per_track == 440 // 8
    assert geometry.blocks_per_cylinder == geometry.blocks_per_track * 8
    assert geometry.n_blocks == 64 * MB // (4 * KB)


def test_cylinder_of_first_and_last_block(geometry):
    assert geometry.cylinder_of(0) == 0
    last = geometry.n_blocks - 1
    assert geometry.cylinder_of(last) == geometry.n_cylinders - 1


def test_position_of_is_bounds_checked(geometry):
    with pytest.raises(AddressError):
        geometry.position_of(geometry.n_blocks)
    with pytest.raises(AddressError):
        geometry.position_of(-1)


def test_position_components_in_range(geometry):
    pos = geometry.position_of(12345)
    assert 0 <= pos.cylinder < geometry.n_cylinders
    assert 0 <= pos.track < 8
    assert 0 <= pos.sector < 440


def test_seek_distance_symmetric(geometry):
    a, b = 100, geometry.n_blocks - 1
    assert geometry.seek_distance(a, b) == geometry.seek_distance(b, a)
    assert geometry.seek_distance(a, a) == 0


def test_clamp_run_stops_at_disk_end(geometry):
    start = geometry.n_blocks - 3
    assert geometry.clamp_run(start, 10) == 3
    assert geometry.clamp_run(0, 10) == 10


@given(st.integers(min_value=0, max_value=16383))
def test_blocks_within_one_cylinder_have_same_cylinder(block):
    geometry = DiskGeometry(DiskParams(capacity_bytes=64 * MB), block_size=4 * KB)
    block = block % geometry.n_blocks
    pos = geometry.position_of(block)
    assert pos.cylinder == geometry.cylinder_of(block)
    # consistency: reconstruct the block index from the position
    rebuilt = (
        pos.cylinder * geometry.blocks_per_cylinder
        + pos.track * geometry.blocks_per_track
        + pos.sector // geometry.sectors_per_block
    )
    assert rebuilt == block
