"""Trace-format parsers: blktrace, MSR CSV, fio iolog, autodetection."""

import gzip
import itertools
from pathlib import Path

import pytest

from repro.errors import WorkloadError
from repro.ingest import detect_format, parse_blktrace, parse_fio, parse_msr
from repro.ingest.detect import parse_source
from repro.workloads.trace import TimedAccess

DATA = Path(__file__).parent / "data"

BLK_LINES = [
    "  8,0    1        1     0.000012000  4510  Q  RA 2048 + 16 [fio]",
    "  8,0    1        2     0.000050000  4510  G  RA 2048 + 16 [fio]",
    "  8,0    2        3     0.001512000  4511  Q  WS 4096 + 8 [fio]",
    "  8,0    2        4     0.003012000  4511  C  WS 4096 + 8 [0]",
    "  8,0    1        5     0.004000000  4510  Q   R 2064 + 16 [fio]",
]

MSR_LINES = [
    "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime",
    "128166372003061629,usr,0,Read,8192,8192,1331",
    "128166372003111629,usr,0,Write,40960,4096,900",
    "128166372003211629,usr,1,Read,0,16384,4005",
]

FIO_LINES = [
    "fio version 3 iolog",
    "0 /data/f add",
    "0 /data/f open",
    "2 /data/f read 0 65536",
    "5 /data/f write 65536 4096",
    "9 /data/f close",
]


class TestBlktrace:
    def test_parses_queue_events_only(self):
        records = list(parse_blktrace(BLK_LINES))
        assert len(records) == 3
        assert [r.is_write for r in records] == [False, True, False]
        # 2048 sectors * 512 B = 1 MiB = block 256 at 4-KB blocks
        assert records[0].runs == ((256, 2),)

    def test_timestamps_rezeroed_to_ms(self):
        records = list(parse_blktrace(BLK_LINES))
        assert isinstance(records[0], TimedAccess)
        assert records[0].timestamp_ms == 0.0
        assert records[1].timestamp_ms == pytest.approx(1.5)

    def test_device_filter(self):
        lines = BLK_LINES + [
            "  8,16   0        9     0.005000000  4512  Q   R 0 + 8 [fio]"
        ]
        assert len(list(parse_blktrace(lines))) == 4
        assert len(list(parse_blktrace(lines, device="8,16"))) == 1

    def test_action_filter(self):
        assert len(list(parse_blktrace(BLK_LINES, action="C"))) == 1

    def test_summary_lines_skipped(self):
        lines = BLK_LINES + ["Total (8,0):", " Reads Queued: 2, 16KiB"]
        assert len(list(parse_blktrace(lines))) == 3

    def test_malformed_payload_names_line(self):
        lines = ["  8,0  0  1  0.0  1  Q  R 2048 % 16 [x]"]
        with pytest.raises(WorkloadError, match="line 1"):
            list(parse_blktrace(lines))


class TestMsr:
    def test_parses_rows(self):
        records = list(parse_msr(MSR_LINES))
        assert len(records) == 3
        assert records[0].runs == ((2, 2),)
        assert records[1].is_write

    def test_filetime_ticks_to_ms(self):
        records = list(parse_msr(MSR_LINES))
        assert records[0].timestamp_ms == 0.0
        assert records[1].timestamp_ms == pytest.approx(5.0)

    def test_disk_number_filter(self):
        assert len(list(parse_msr(MSR_LINES, disk_number=1))) == 1

    def test_bad_type_names_line(self):
        lines = MSR_LINES[:2] + ["128166372003061630,usr,0,Flush,0,4096,1"]
        with pytest.raises(WorkloadError, match="line 3"):
            list(parse_msr(lines))

    def test_header_only_tolerated_on_first_line(self):
        lines = [MSR_LINES[1], MSR_LINES[0]]
        with pytest.raises(WorkloadError, match="line 2"):
            list(parse_msr(lines))


class TestFio:
    def test_parses_iolog_v3(self):
        records = list(parse_fio(FIO_LINES))
        assert len(records) == 2
        assert records[0].runs == ((0, 16),)
        assert records[0].timestamp_ms == 0.0
        assert records[1].timestamp_ms == pytest.approx(3.0)
        assert records[1].is_write

    def test_v2_has_zero_timestamps(self):
        lines = ["fio version 2 iolog", "/data/f read 0 4096"]
        (record,) = list(parse_fio(lines))
        assert record.timestamp_ms == 0.0

    def test_missing_header_rejected(self):
        with pytest.raises(WorkloadError, match="line 1"):
            list(parse_fio(["2 /data/f read 0 65536"]))

    def test_unknown_action_names_line(self):
        lines = FIO_LINES[:4] + ["6 /data/f reed 0 4096"]
        with pytest.raises(WorkloadError, match="line 5"):
            list(parse_fio(lines))


class TestDetect:
    def test_detects_all_formats(self, tmp_path):
        cases = {
            "blktrace": DATA / "sample_blktrace.txt",
            "msr": DATA / "sample_msr.csv",
            "fio": DATA / "sample_fio.log",
        }
        for fmt, path in cases.items():
            assert detect_format(path) == fmt

    def test_detects_jsonl(self):
        assert detect_format(['{"meta": {}}']) == "jsonl"

    def test_unrecognized_raises(self):
        with pytest.raises(WorkloadError, match="unrecognized"):
            detect_format(["what even is this", "not a trace"])

    def test_parse_source_auto_on_samples(self):
        fmt, records = parse_source(DATA / "sample_msr.csv")
        assert fmt == "msr"
        assert len(list(records)) == 80


class TestGzipAndStreaming:
    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "t.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("\n".join(BLK_LINES) + "\n")
        assert detect_format(path) == "blktrace"
        assert len(list(parse_blktrace(path))) == 3

    def test_constant_memory_never_materializes_source(self):
        """Parsers must be lazy: pull 5 records off an endless source."""

        def endless():
            yield "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
            for i in itertools.count():
                yield f"{128166372003061629 + i * 10_000},usr,0,Read,{4096 * i},4096,100"

        records = parse_msr(endless())
        first_five = list(itertools.islice(records, 5))
        assert len(first_five) == 5
        assert first_five[4].runs == ((4, 1),)

    def test_sample_files_stay_small(self):
        for name in (
            "sample_blktrace.txt",
            "sample_msr.csv",
            "sample_fio.log",
        ):
            assert (DATA / name).stat().st_size < 50_000
