"""Workload generation: Zipf, traces, file sizes, the §6.2 synthetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.filesize import (
    constant_file_sizes_blocks,
    sample_file_sizes_blocks,
)
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload
from repro.workloads.trace import (
    DiskAccess,
    Trace,
    TraceMeta,
    count_block_accesses,
)
from repro.workloads.zipf import ZipfSampler, zipf_accumulated
from repro.units import KB


class TestZipf:
    def test_uniform_when_alpha_zero(self):
        sampler = ZipfSampler(100, 0.0, rng=np.random.default_rng(0))
        draws = sampler.sample(20_000)
        counts = np.bincount(draws, minlength=100)
        assert counts.min() > 100  # every item drawn plenty

    def test_skew_increases_with_alpha(self):
        rng = np.random.default_rng(0)
        flat = ZipfSampler(1000, 0.2, rng=rng).sample(20_000)
        steep = ZipfSampler(1000, 1.0, rng=np.random.default_rng(0)).sample(20_000)
        assert (steep == 0).sum() > (flat == 0).sum()

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, 0.7)
        total = sum(sampler.probability(i) for i in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(50, 0.7)
        probs = [sampler.probability(i) for i in range(50)]
        assert probs == sorted(probs, reverse=True)

    def test_accumulated_extremes(self):
        assert zipf_accumulated(0, 100, 0.5) == 0.0
        assert zipf_accumulated(100, 100, 0.5) == pytest.approx(1.0)
        assert zipf_accumulated(200, 100, 0.5) == pytest.approx(1.0)

    def test_accumulated_uniform(self):
        assert zipf_accumulated(10, 100, 0.0) == pytest.approx(0.1)

    def test_accumulated_increases_with_alpha(self):
        low = zipf_accumulated(10, 1000, 0.2)
        high = zipf_accumulated(10, 1000, 1.0)
        assert high > low

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 0.5)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -0.1)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, 0.5).sample(-1)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, 0.5).probability(10)

    @given(
        n=st.integers(min_value=1, max_value=500),
        alpha=st.floats(min_value=0.0, max_value=2.0),
        k=st.integers(min_value=0, max_value=600),
    )
    @settings(max_examples=60)
    def test_accumulated_in_unit_interval_and_monotone(self, n, alpha, k):
        z = zipf_accumulated(k, n, alpha)
        assert 0.0 <= z <= 1.0 + 1e-12
        assert zipf_accumulated(k + 1, n, alpha) >= z - 1e-12


class TestTrace:
    def test_disk_access_validation(self):
        with pytest.raises(WorkloadError):
            DiskAccess([])
        with pytest.raises(WorkloadError):
            DiskAccess([(0, 0)])
        with pytest.raises(WorkloadError):
            DiskAccess([(-1, 4)])

    def test_block_iteration_and_count(self):
        access = DiskAccess([(10, 2), (20, 1)])
        assert list(access.blocks()) == [10, 11, 20]
        assert access.n_blocks == 3

    def test_equality_and_hash(self):
        a = DiskAccess([(1, 2)], is_write=True)
        b = DiskAccess([(1, 2)], is_write=True)
        c = DiskAccess([(1, 2)], is_write=False)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_trace_stats(self):
        records = [DiskAccess([(0, 4)]), DiskAccess([(4, 4)], is_write=True)]
        trace = Trace(records, TraceMeta(name="t"))
        assert len(trace) == 2
        assert trace.total_blocks == 8
        assert trace.write_fraction == pytest.approx(0.5)

    def test_save_load_roundtrip(self, tmp_path):
        records = [
            DiskAccess([(0, 4), (10, 1)]),
            DiskAccess([(4, 4)], is_write=True),
        ]
        meta = TraceMeta(name="rt", n_files=2, n_streams=7, coalesce_prob=0.5)
        path = tmp_path / "trace.jsonl"
        Trace(records, meta).save(path)
        loaded = Trace.load(path)
        assert list(loaded) == records
        assert loaded.meta.name == "rt"
        assert loaded.meta.n_streams == 7

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(WorkloadError):
            Trace.load(path)
        path.write_text('{"not_meta": 1}\n')
        with pytest.raises(WorkloadError):
            Trace.load(path)

    def test_count_block_accesses(self):
        trace = Trace(
            [DiskAccess([(0, 2)]), DiskAccess([(1, 2)])], TraceMeta()
        )
        counts = count_block_accesses(trace)
        assert counts[0] == 1
        assert counts[1] == 2
        assert counts[2] == 1


class TestFileSizes:
    def test_constant_sizes(self):
        sizes = constant_file_sizes_blocks(10, 16 * KB, 4 * KB)
        assert (sizes == 4).all()

    def test_sub_block_rounds_to_one(self):
        sizes = constant_file_sizes_blocks(3, 100, 4 * KB)
        assert (sizes == 1).all()

    def test_lognormal_mean_approximates_target(self):
        sizes = sample_file_sizes_blocks(
            50_000, 21.5 * KB, 4 * KB, rng=np.random.default_rng(0), sigma=1.2
        )
        mean_bytes = sizes.mean() * 4 * KB
        # ceiling-to-blocks inflates the mean somewhat
        assert 21.5 * KB * 0.8 < mean_bytes < 21.5 * KB * 1.8
        assert sizes.min() >= 1

    def test_max_clamp(self):
        sizes = sample_file_sizes_blocks(
            1000, 64 * KB, 4 * KB, rng=np.random.default_rng(0), max_blocks=8
        )
        assert sizes.max() <= 8

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            sample_file_sizes_blocks(0, 16 * KB, 4 * KB)
        with pytest.raises(WorkloadError):
            sample_file_sizes_blocks(10, 1, 4 * KB)
        with pytest.raises(WorkloadError):
            sample_file_sizes_blocks(10, 16 * KB, 4 * KB, sigma=0)


class TestSynthetic:
    def test_build_matches_spec(self):
        spec = SyntheticSpec(n_requests=500, n_files=200, file_size_bytes=16 * KB)
        layout, trace = SyntheticWorkload(spec).build()
        assert layout.n_files == 200
        assert len(trace) == 500
        assert all(r.n_blocks == 4 for r in trace)
        assert trace.write_fraction == 0.0

    def test_write_fraction_respected(self):
        spec = SyntheticSpec(n_requests=2000, write_fraction=0.3)
        _, trace = SyntheticWorkload(spec).build()
        assert trace.write_fraction == pytest.approx(0.3, abs=0.04)

    def test_deterministic_per_seed(self):
        spec = SyntheticSpec(n_requests=100, seed=5)
        _, a = SyntheticWorkload(spec).build()
        _, b = SyntheticWorkload(spec).build()
        assert list(a) == list(b)

    def test_periods_share_layout_but_differ_in_draws(self):
        import dataclasses

        spec = SyntheticSpec(n_requests=300, seed=5, period=0)
        layout0, t0 = SyntheticWorkload(spec).build()
        layout1, t1 = SyntheticWorkload(
            dataclasses.replace(spec, period=1)
        ).build()
        assert layout0.footprint_blocks == layout1.footprint_blocks
        assert [f.extents for f in layout0.files] == [
            f.extents for f in layout1.files
        ]
        assert list(t0) != list(t1)

    def test_fragmented_spec_produces_multi_run_records(self):
        spec = SyntheticSpec(
            n_requests=200, n_files=200, file_size_bytes=32 * KB, frag_prob=0.5
        )
        _, trace = SyntheticWorkload(spec).build()
        assert any(len(r.runs) > 1 for r in trace)

    def test_bad_spec_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticSpec(n_requests=0).validate()
        with pytest.raises(WorkloadError):
            SyntheticSpec(write_fraction=2.0).validate()
