"""Scale sweep: knee detection, registry wiring, parallel identity."""

import pytest

from repro.experiments import scale_sweep
from repro.experiments.base import SeriesResult
from repro.experiments.parallel import ParallelSweep
from repro.experiments.registry import EXPERIMENTS, RUNNERS, SWEEPS

#: A tiny two-point sweep that still straddles the knee at scale 0.02:
#: 400 records against 500 vs 200k clients.
TINY_CLIENTS = (500, 200_000)
TINY_TECHNIQUES = ("segm", "for")


@pytest.fixture(scope="module")
def tiny_result():
    return scale_sweep.run(
        scale=0.02, clients=TINY_CLIENTS, techniques=TINY_TECHNIQUES
    )


class TestRun:
    def test_result_shape(self, tiny_result):
        assert tiny_result.exp_id == "scale_sweep"
        assert tiny_result.x_values == list(TINY_CLIENTS)
        assert len(tiny_result.get("offered_req_s")) == len(TINY_CLIENTS)
        for key in TINY_TECHNIQUES:
            assert len(tiny_result.get(f"p99_ms[{key}]")) == len(TINY_CLIENTS)
            assert len(tiny_result.get(f"mb_s[{key}]")) == len(TINY_CLIENTS)

    def test_offered_rate_tracks_population(self, tiny_result):
        offered = tiny_result.get("offered_req_s")
        assert offered[1] == pytest.approx(
            offered[0] * TINY_CLIENTS[1] / TINY_CLIENTS[0], rel=1e-6
        )

    def test_latency_rises_with_population(self, tiny_result):
        """400x the clients must push p99 up for every technique."""
        for key in TINY_TECHNIQUES:
            series = tiny_result.get(f"p99_ms[{key}]")
            assert series[1] > series[0]

    def test_deterministic(self):
        a = scale_sweep.run(scale=0.02, clients=(500,), techniques=("segm",))
        b = scale_sweep.run(scale=0.02, clients=(500,), techniques=("segm",))
        assert a.to_json() == b.to_json()


class TestKnees:
    def synthetic_result(self, p99s):
        result = SeriesResult(
            exp_id="scale_sweep", title="t", x_label="clients",
            x_values=[1_000, 10_000, 100_000],
        )
        for p in p99s:
            result.add_point("p99_ms[segm]", p)
        return result

    def test_knee_at_first_blowup(self):
        result = self.synthetic_result([2.0, 3.0, 50.0])
        assert scale_sweep.find_knees(result, ["segm"]) == {"segm": 100_000}

    def test_no_knee_within_sweep(self):
        result = self.synthetic_result([2.0, 3.0, 4.0])
        assert scale_sweep.find_knees(result, ["segm"]) == {"segm": None}
        table = scale_sweep.knee_table(result, ["segm"])
        assert "> 100000" in table

    def test_knee_table_renders(self, tiny_result):
        table = scale_sweep.knee_table(tiny_result, TINY_TECHNIQUES)
        assert "knee_clients" in table
        assert "Segm" in table and "FOR" in table  # technique labels

    def test_hdc_extends_the_knee(self):
        """The headline claim at tiny scale: caching techniques keep
        p99 lower at the overloaded point than plain Segm."""
        result = scale_sweep.run(
            scale=0.02, clients=(200_000,), techniques=("segm", "segm+hdc")
        )
        plain = result.get("p99_ms[segm]")[0]
        hdc = result.get("p99_ms[segm+hdc]")[0]
        assert hdc <= plain


class TestRegistry:
    def test_registered_everywhere(self):
        assert "scale_sweep" in EXPERIMENTS
        assert "scale_sweep" in RUNNERS
        spec = SWEEPS["scale_sweep"]
        assert spec.axis == "clients"
        assert spec.values == scale_sweep.CLIENT_COUNTS

    def test_parallel_matches_serial(self):
        """Each cell sees one population size; the merged result must be
        byte-identical to the serial sweep (knee detection is a pure
        post-merge step, so it can't diverge)."""
        serial = scale_sweep.run(
            scale=0.02, clients=TINY_CLIENTS, techniques=TINY_TECHNIQUES
        )
        par = ParallelSweep(
            "scale_sweep", scale=0.02, jobs=2, values=list(TINY_CLIENTS)
        ).run()
        # The parallel runner sweeps all registered techniques; compare
        # the series the serial run produced.
        assert par.x_values == serial.x_values
        for series, values in serial.series.items():
            assert par.get(series) == values
        assert scale_sweep.knee_table(par, TINY_TECHNIQUES).splitlines()[0]
