"""The shared cache core's data structures, exercised directly.

:mod:`repro.cache.core` carries the O(1)/O(log n) machinery every
cache policy rides on; these tests pin down the structural invariants
the policies assume — lazy-deletion heap semantics, and the SlotList's
order-preservation contract (append = end, replace = same position,
remove = relative order unchanged) that makes heap victim selection
byte-identical to the old linear ``min()`` scan.
"""

import pytest

from repro.cache.core import (
    CacheCore,
    CacheStats,
    SlotList,
    VictimHeap,
)
from repro.obs.tracer import Tracer


class _Item:
    __slots__ = ("name", "order_key", "alive")

    def __init__(self, name):
        self.name = name
        self.order_key = 0
        self.alive = True

    def __repr__(self):
        return f"_Item({self.name})"


class TestVictimHeap:
    def test_pop_min_returns_smallest_key(self):
        heap = VictimHeap()
        items = {k: _Item(k) for k in "abc"}
        heap.push(3, 0, items["a"])
        heap.push(1, 1, items["b"])
        heap.push(2, 2, items["c"])
        assert heap.pop_min(lambda item, key: True) is items["b"]

    def test_ties_broken_by_order(self):
        heap = VictimHeap()
        first, second = _Item("first"), _Item("second")
        heap.push(5, 1, second)
        heap.push(5, 0, first)
        assert heap.pop_min(lambda item, key: True) is first

    def test_stale_entries_skipped(self):
        heap = VictimHeap()
        stale, live = _Item("stale"), _Item("live")
        stale.alive = False
        heap.push(1, 0, stale)
        heap.push(2, 1, live)
        assert heap.pop_min(lambda item, key: item.alive) is live
        assert len(heap) == 0

    def test_exhausted_heap_raises(self):
        heap = VictimHeap()
        dead = _Item("dead")
        dead.alive = False
        heap.push(1, 0, dead)
        with pytest.raises(IndexError):
            heap.pop_min(lambda item, key: item.alive)

    def test_key_change_invalidates_old_entry(self):
        # The lazy-deletion discipline: a touch pushes a NEW entry; the
        # old one must be rejected via the key the predicate receives.
        heap = VictimHeap()
        item = _Item("touched")
        current_key = 10
        heap.push(1, 0, item)  # stale: key 1 != current 10
        heap.push(10, 0, item)
        got = heap.pop_min(lambda it, key: key == current_key)
        assert got is item


class TestSlotList:
    def test_append_preserves_arrival_order(self):
        slots = SlotList()
        items = [_Item(i) for i in range(4)]
        for it in items:
            slots.append(it)
        assert list(slots) == items
        assert [slots[i] for i in range(4)] == items

    def test_replace_keeps_position(self):
        slots = SlotList()
        a, b, c, d = (_Item(k) for k in "abcd")
        for it in (a, b, c):
            slots.append(it)
        slots.replace(b, d)
        assert list(slots) == [a, d, c]
        assert d.order_key == b.order_key
        # The replacement is findable at the inherited position.
        e = _Item("e")
        slots.replace(d, e)
        assert list(slots) == [a, e, c]

    def test_remove_keeps_relative_order(self):
        slots = SlotList()
        items = [_Item(i) for i in range(5)]
        for it in items:
            slots.append(it)
        slots.remove(items[2])
        assert list(slots) == [items[0], items[1], items[3], items[4]]

    def test_remove_missing_raises(self):
        slots = SlotList()
        a = _Item("a")
        slots.append(a)
        ghost = _Item("ghost")
        ghost.order_key = a.order_key  # same key, different identity
        with pytest.raises(ValueError):
            slots.remove(ghost)

    def test_append_after_replace_lands_at_end(self):
        slots = SlotList()
        a, b, c = (_Item(k) for k in "abc")
        slots.append(a)
        slots.append(b)
        slots.replace(a, c)  # c takes a's (front) position
        d = _Item("d")
        slots.append(d)
        assert list(slots) == [c, b, d]


class TestCacheCore:
    def test_missing_updates_stats(self):
        core = CacheCore()
        core.present[1] = object()
        core.present[2] = object()
        absent = core.missing([1, 2, 3, 4])
        assert absent == [3, 4]
        assert core.stats.lookups == 4
        assert core.stats.block_hits == 2
        assert core.stats.block_misses == 2

    def test_record_eviction_counts_and_traces(self):
        core = CacheCore()
        tracer = Tracer()
        core.attach_tracer(tracer, "t")
        core.record_eviction(8, 3, stream=5)
        core.record_eviction(4, 0)
        assert core.stats.evictions == 2
        assert core.stats.useless_evictions == 3
        # events: (run, ph, track, name, ts, dur, span_id, args)
        evicts = [e for e in tracer.events if e[3] == "cache.evict"]
        assert len(evicts) == 2
        assert evicts[0][7] == {"blocks": 8, "unused": 3, "stream": 5}
        assert evicts[1][7] == {"blocks": 4, "unused": 0}

    def test_stats_merge_includes_overflow(self):
        a = CacheStats(fills=1, fill_overflow_blocks=2)
        b = CacheStats(fills=3, fill_overflow_blocks=5)
        assert a.merge(b).fill_overflow_blocks == 7
