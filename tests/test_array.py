"""Disk array fan-out, gather and HDC orchestration."""

import pytest

from repro.errors import SimulationError
from repro.host.system import System
from repro.units import KB


@pytest.fixture
def system(small_config):
    return System(small_config)


def test_array_width_matches_config(system, small_config):
    assert system.array.n_disks == small_config.array.n_disks


def test_submit_logical_completes_once(system):
    done = []
    system.array.submit_logical(0, 4, on_complete=lambda: done.append(system.sim.now))
    system.sim.run()
    assert len(done) == 1


def test_cross_disk_fanout_runs_in_parallel(small_config):
    """A run spanning both disks should take ~one disk's time."""
    system = System(small_config, deterministic_rotation=True)
    sim = system.sim
    unit = system.striping.unit_blocks

    t_single = []
    system.array.submit_logical(0, unit, on_complete=lambda: t_single.append(sim.now))
    sim.run()
    start = sim.now
    t_double = []
    system.array.submit_logical(
        2 * unit * 2, 2 * unit, on_complete=lambda: t_double.append(sim.now)
    )
    sim.run()
    parallel_time = t_double[0] - start
    # two disks in parallel: well under 2x a single-disk access
    assert parallel_time < 1.8 * t_single[0]


def test_controller_stats_aggregation(system):
    system.array.submit_logical(0, 8)
    system.sim.run()
    stats = system.array.controller_stats()
    assert stats.commands >= 1
    assert stats.blocks_requested == 8


def test_cache_stats_aggregation(system):
    system.array.submit_logical(0, 4)
    system.sim.run()
    assert system.array.cache_stats().blocks_filled > 0


def test_media_busy_times_per_disk(system):
    system.array.submit_logical(0, 4)
    system.sim.run()
    busy = system.array.media_busy_times()
    assert len(busy) == 2
    assert any(b > 0 for b in busy)


def test_mismatched_controllers_rejected(system):
    from repro.array.array import DiskArray
    from repro.array.striping import StripingLayout

    bad = StripingLayout(3, 4, 100)
    with pytest.raises(SimulationError):
        DiskArray(system.sim, bad, system.array.controllers, system.bus)


def test_pin_logical_blocks_routes_to_home_disks(small_config):
    config = small_config.with_(hdc_bytes=32 * KB)
    system = System(config)
    unit = system.striping.unit_blocks
    # one block on each disk
    count = system.array.pin_logical_blocks([0, unit])
    assert count == 2
    assert system.controllers[0].pinned.is_pinned(0)
    assert system.controllers[1].pinned.is_pinned(0)


def test_flush_all_hdc_completes(small_config):
    config = small_config.with_(hdc_bytes=32 * KB)
    system = System(config)
    system.array.pin_logical_blocks([0, 1])
    done = []
    system.array.flush_all_hdc(lambda: done.append(1))
    system.sim.run()
    assert done == [1]
