"""FIFO resource semantics and utilisation accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


def test_grants_up_to_capacity_immediately():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    granted = []
    resource.acquire(lambda: granted.append(1))
    resource.acquire(lambda: granted.append(2))
    resource.acquire(lambda: granted.append(3))
    sim.run()
    assert granted == [1, 2]
    assert resource.queue_length == 1


def test_release_grants_oldest_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []
    resource.acquire(lambda: order.append("a"))
    resource.acquire(lambda: order.append("b"))
    resource.acquire(lambda: order.append("c"))
    sim.run()
    assert order == ["a"]
    resource.release()
    sim.run()
    assert order == ["a", "b"]
    resource.release()
    sim.run()
    assert order == ["a", "b", "c"]


def test_release_on_idle_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_capacity_must_be_positive():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_hold_serializes_and_times_transfers():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    done = []
    resource.hold(10.0, lambda: done.append(sim.now))
    resource.hold(5.0, lambda: done.append(sim.now))
    sim.run()
    # Second transfer starts only after the first releases.
    assert done == [10.0, 15.0]
    assert resource.in_use == 0


def test_busy_time_accounting():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.hold(10.0, lambda: None)
    resource.hold(10.0, lambda: None)
    sim.run()
    assert resource.busy_time == pytest.approx(20.0)
    assert resource.utilization(sim.now) == pytest.approx(1.0)


def test_utilization_fraction_of_elapsed():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.hold(10.0, lambda: None)
    sim.run()
    sim.schedule(30.0, lambda: None)
    sim.run()
    assert resource.utilization(sim.now) == pytest.approx(0.25)


def test_max_queue_len_tracked():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    for _ in range(4):
        resource.acquire(lambda: None)
    assert resource.max_queue_len == 3
