"""Streaming phase detection on synthetic streams with known breaks."""

import pytest

from repro.errors import ReproError
from repro.perfkit.phases import PhaseDetector, detect_phases, phase_table
from repro.workloads.trace import DiskAccess, TimedAccess

WINDOW = 16


def reads(n, start=0, blocks=4):
    """Untimed homogeneous read records, one file-sized run each."""
    return [
        DiskAccess(((start + i * 2 * blocks, blocks),), False)
        for i in range(n)
    ]


def writes(n, start=0, blocks=4):
    return [
        DiskAccess(((start + i * 2 * blocks, blocks),), True) for i in range(n)
    ]


def timed(records, interarrival_ms, t0=0.0):
    out, now = [], t0
    for r in records:
        out.append(TimedAccess(r.runs, r.is_write, timestamp_ms=now))
        now += interarrival_ms
    return out


def test_empty_stream_yields_no_phases():
    assert detect_phases([], window_records=WINDOW) == []
    assert phase_table([]) == "(no records — no phases)"


def test_homogeneous_stream_is_one_phase():
    phases = detect_phases(reads(8 * WINDOW), window_records=WINDOW)
    assert len(phases) == 1
    phase = phases[0]
    assert (phase.start_record, phase.end_record) == (0, 8 * WINDOW)
    assert phase.n_records == 8 * WINDOW
    assert phase.start_ms is None and phase.duration_ms is None
    assert phase.signals["write_frac"] == 0.0
    assert phase.signals["mean_blocks"] == 4.0
    assert "rate_req_s" not in phase.signals  # untimed: no rate signal


def test_write_mix_change_point_found_at_boundary():
    stream = reads(4 * WINDOW) + writes(4 * WINDOW, start=10_000)
    phases = detect_phases(stream, window_records=WINDOW)
    assert len(phases) == 2
    assert phases[0].end_record == 4 * WINDOW
    assert phases[1].start_record == 4 * WINDOW
    assert phases[0].signals["write_frac"] == 0.0
    assert phases[1].signals["write_frac"] == 1.0


def test_arrival_rate_change_point_found():
    slow = timed(reads(4 * WINDOW), interarrival_ms=4.0)
    fast = timed(
        reads(4 * WINDOW, start=10_000),
        interarrival_ms=1.0,
        t0=slow[-1].timestamp_ms + 4.0,
    )
    phases = detect_phases(slow + fast, window_records=WINDOW)
    assert len(phases) == 2
    assert phases[0].end_record == 4 * WINDOW
    # rates recover the interarrival means (1000/4 and 1000/1 req/s)
    assert phases[0].signals["rate_req_s"] == pytest.approx(250.0, rel=0.1)
    assert phases[1].signals["rate_req_s"] == pytest.approx(1000.0, rel=0.1)
    # sealed phase time bounds never leak into the next phase
    assert phases[0].end_ms < phases[1].start_ms
    assert phases[0].duration_ms > 0


def test_request_size_change_point_found():
    small = reads(4 * WINDOW, blocks=4)
    large = reads(4 * WINDOW, start=100_000, blocks=16)
    phases = detect_phases(small + large, window_records=WINDOW)
    assert len(phases) == 2
    assert phases[0].signals["mean_blocks"] == 4.0
    assert phases[1].signals["mean_blocks"] == 16.0


def test_tail_window_joins_current_phase():
    # 4 full windows plus a 5-record tail: still one phase to the end
    n = 4 * WINDOW + 5
    phases = detect_phases(reads(n), window_records=WINDOW)
    assert len(phases) == 1
    assert phases[0].end_record == n


def test_tail_shorter_than_one_window_is_one_phase():
    phases = detect_phases(reads(3), window_records=WINDOW)
    assert len(phases) == 1
    assert phases[0].n_records == 3


def test_sequential_runs_raise_seq_frac():
    records = []
    pos = 0
    for _ in range(4 * WINDOW):
        records.append(DiskAccess(((pos, 4),), False))
        pos += 4  # next record starts exactly where this one ended
    phases = detect_phases(records, window_records=WINDOW)
    assert len(phases) == 1
    # every record but the very first continues its predecessor
    expected = (4 * WINDOW - 1) / (4 * WINDOW)
    assert phases[0].signals["seq_frac"] == pytest.approx(expected)


def test_detection_is_deterministic():
    stream = reads(3 * WINDOW) + writes(3 * WINDOW, start=10_000)
    first = detect_phases(stream, window_records=WINDOW)
    second = detect_phases(stream, window_records=WINDOW)
    assert first == second


def test_streaming_equals_batch():
    stream = reads(2 * WINDOW) + writes(2 * WINDOW, start=10_000)
    detector = PhaseDetector(window_records=WINDOW)
    for record in stream:
        detector.feed(record)
    assert detector.finish() == detect_phases(stream, window_records=WINDOW)


def test_feed_rejects_record_with_empty_runs():
    """A duck-typed record with no block runs raises the module's
    ReproError (with the record index), not a bare IndexError."""
    class HollowRecord:
        runs = ()
        is_write = False

    detector = PhaseDetector(window_records=WINDOW)
    detector.feed(reads(1)[0])
    with pytest.raises(ReproError, match="record 1 has no block runs"):
        detector.feed(HollowRecord())
    # the stream is still usable afterwards: the bad record was not
    # half-accounted into the window
    for record in reads(2 * WINDOW):
        detector.feed(record)
    assert len(detector.finish()) == 1


def test_feed_after_finish_raises():
    detector = PhaseDetector(window_records=WINDOW)
    detector.finish()
    with pytest.raises(ReproError):
        detector.feed(reads(1)[0])


def test_finish_is_idempotent():
    detector = PhaseDetector(window_records=WINDOW)
    for record in reads(2 * WINDOW):
        detector.feed(record)
    assert detector.finish() == detector.finish()


def test_parameter_validation():
    with pytest.raises(ReproError):
        PhaseDetector(window_records=1)
    with pytest.raises(ReproError):
        PhaseDetector(threshold=0.0)
    with pytest.raises(ReproError):
        PhaseDetector(threshold=-1.0)


def test_phase_table_renders_timed_and_untimed():
    untimed = phase_table(detect_phases(reads(2 * WINDOW), window_records=WINDOW))
    assert "write_frac" in untimed and "t_start_ms" not in untimed
    stream = timed(reads(2 * WINDOW), interarrival_ms=2.0)
    timed_table = phase_table(detect_phases(stream, window_records=WINDOW))
    assert "t_start_ms" in timed_table and "rate_req_s" in timed_table
