"""Focused tests for behaviours not covered elsewhere."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.utilization import average_seek_of
from repro.cache.block import BlockCache
from repro.cache.segment import SegmentCache
from repro.config import DiskParams, ReadAheadKind, ultrastar_36z15_config
from repro.controller.commands import DiskCommand
from repro.scheduling.base import QueuedRequest
from repro.units import KB
from repro.workloads.trace import TraceMeta


class TestAverageSeek:
    def test_table1_drive_average_near_3_4ms(self):
        avg = average_seek_of(DiskParams(), 4 * KB)
        assert avg == pytest.approx(3.4, rel=0.15)

    def test_small_disk_has_smaller_average(self):
        small = average_seek_of(
            DiskParams(capacity_bytes=1_000_000_000), 4 * KB
        )
        big = average_seek_of(DiskParams(), 4 * KB)
        assert small < big


class TestQueuedRequest:
    def test_fields(self):
        req = QueuedRequest(5, "payload", 1.0, 7)
        assert req.cylinder == 5
        assert req.payload == "payload"
        assert req.enqueued_at == 1.0
        assert req.seq == 7


class TestTraceMeta:
    def test_defaults_match_paper(self):
        meta = TraceMeta()
        assert meta.n_streams == 128
        assert meta.coalesce_prob == pytest.approx(0.87)
        assert meta.block_size == 4096


class TestConfigDescribe:
    def test_for_config_shows_bitmap(self):
        text = ultrastar_36z15_config(
            readahead=ReadAheadKind.FILE_ORIENTED
        ).describe()
        assert "536 KBytes" in text

    def test_blind_config_shows_no_bitmap(self):
        text = ultrastar_36z15_config().describe()
        assert "(none)" in text


class TestSegmentCacheEdges:
    def test_anonymous_stream_fills_allocate_fresh_segments(self):
        cache = SegmentCache(4, 4)
        cache.fill([0, 1], stream_hint=-1)
        cache.fill([10, 11], stream_hint=-1)
        assert cache.segments_in_use == 2  # no stream reuse for -1

    def test_empty_fill_is_noop(self):
        cache = SegmentCache(4, 4)
        cache.fill([], stream_hint=0)
        assert len(cache) == 0

    def test_fill_of_only_cached_blocks_allocates_nothing(self):
        cache = SegmentCache(4, 4)
        cache.fill([1, 2], stream_hint=0)
        cache.fill([1, 2], stream_hint=1)
        assert cache.segments_in_use == 1


class TestBlockCacheInterleaving:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["fill", "access", "invalidate"]),
                st.integers(min_value=0, max_value=40),
            ),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=50)
    def test_interleaved_ops_keep_invariants(self, ops):
        cache = BlockCache(12)
        for op, block in ops:
            if op == "fill":
                cache.fill([block])
            elif op == "access":
                cache.access([block])
            else:
                cache.invalidate(block)
            assert len(cache) <= 12
            # internal pools are disjoint
            shared = set(cache._accessed) & set(cache._unaccessed)
            assert not shared


class TestDiskCommandRepr:
    def test_repr_shows_direction_and_span(self):
        text = repr(DiskCommand(3, 100, 4, is_write=True))
        assert "W" in text and "disk=3" in text and "[100,104)" in text
