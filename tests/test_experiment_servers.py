"""The shared server-sweep drivers (experiments.servers)."""

import math


from repro.experiments.servers import (
    HDC_SIZES_KB,
    STRIPING_UNITS_KB,
    build_two_periods,
    hdc_sweep,
    striping_sweep,
)
from repro.units import KB
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload


def tiny_workload():
    spec = SyntheticSpec(
        n_requests=120, n_files=300, file_size_bytes=16 * KB, n_streams=8
    )
    return SyntheticWorkload(spec).build()


class TestStripingSweep:
    def test_produces_all_four_series(self):
        result = striping_sweep(
            "figXX",
            "test sweep",
            tiny_workload,
            units_kb=(16, 128),
            hdc_pin_fraction=0.1,
        )
        assert result.x_values == [16, 128]
        for name in ("Segm", "Segm+HDC", "FOR", "FOR+HDC"):
            series = result.get(name)
            assert len(series) == 2
            assert all(v > 0 for v in series)

    def test_notes_describe_trace(self):
        result = striping_sweep(
            "figXX", "t", tiny_workload, units_kb=(128,)
        )
        assert any("records" in n for n in result.notes)


class TestHdcSweep:
    def test_hit_rate_series_present(self):
        result = hdc_sweep(
            "figYY",
            "test hdc sweep",
            tiny_workload,
            striping_unit_kb=128,
            hdc_sizes_kb=(0, 512),
        )
        hits = result.get("hdc_hit_rate")
        assert len(hits) == 2
        assert hits[0] == 0.0  # no HDC region, no hits

    def test_infeasible_config_yields_nan(self):
        result = hdc_sweep(
            "figYY",
            "t",
            tiny_workload,
            striping_unit_kb=128,
            hdc_sizes_kb=(3840,),  # + FOR bitmap > 4 MB cache
        )
        assert math.isnan(result.get("FOR+HDC")[0])
        # Segm+HDC at 3.75 MB is feasible (no bitmap): real number
        assert not math.isnan(result.get("Segm+HDC")[0])


class TestBuildTwoPeriods:
    def test_layout_shared_traces_differ(self):
        def make(period):
            return SyntheticWorkload(
                SyntheticSpec(n_requests=100, n_files=200, period=period)
            )

        layout, trace, history = build_two_periods(make)
        assert layout.n_files == 200
        assert len(trace) == len(history) == 100
        assert list(trace) != list(history)


class TestSweepConstants:
    def test_paper_sweep_ranges(self):
        assert STRIPING_UNITS_KB == (4, 8, 16, 32, 64, 128, 256)
        assert HDC_SIZES_KB[0] == 0
        assert HDC_SIZES_KB[-1] == 3072
