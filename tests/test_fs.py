"""File-system layer: files, allocator, layout, FOR bitmap construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array.striping import StripingLayout
from repro.errors import LayoutError
from repro.fs.allocator import SequentialAllocator
from repro.fs.bitmap_builder import build_bitmaps, measure_sequential_runs
from repro.fs.files import Extent, FileInfo
from repro.fs.layout import FileSystemLayout


class TestExtentAndFileInfo:
    def test_extent_validation(self):
        with pytest.raises(LayoutError):
            Extent(0, 0)
        with pytest.raises(LayoutError):
            Extent(-1, 4)

    def test_file_needs_extents(self):
        with pytest.raises(LayoutError):
            FileInfo(0, [])

    def test_blocks_iterate_in_order(self):
        info = FileInfo(0, [Extent(10, 2), Extent(20, 3)])
        assert list(info.blocks()) == [10, 11, 20, 21, 22]
        assert info.size_blocks == 5

    def test_block_at(self):
        info = FileInfo(0, [Extent(10, 2), Extent(20, 3)])
        assert info.block_at(0) == 10
        assert info.block_at(2) == 20
        assert info.block_at(4) == 22
        with pytest.raises(LayoutError):
            info.block_at(5)

    def test_logical_runs_full(self):
        info = FileInfo(0, [Extent(10, 2), Extent(20, 3)])
        assert info.logical_runs(0, 5) == [(10, 2), (20, 3)]

    def test_logical_runs_partial_spanning_extents(self):
        info = FileInfo(0, [Extent(10, 2), Extent(20, 3)])
        assert info.logical_runs(1, 3) == [(11, 1), (20, 2)]

    def test_logical_runs_merges_adjacent_extents(self):
        info = FileInfo(0, [Extent(10, 2), Extent(12, 2)])
        assert info.logical_runs(0, 4) == [(10, 4)]

    def test_logical_runs_bounds(self):
        info = FileInfo(0, [Extent(10, 2)])
        with pytest.raises(LayoutError):
            info.logical_runs(0, 3)
        with pytest.raises(LayoutError):
            info.logical_runs(1, 0)


class TestAllocator:
    def test_zero_frag_is_contiguous(self):
        alloc = SequentialAllocator(1000, frag_prob=0.0)
        extents = alloc.allocate(10)
        assert extents == [Extent(0, 10)]
        assert alloc.allocate(5) == [Extent(10, 5)]

    def test_full_frag_breaks_every_boundary(self):
        alloc = SequentialAllocator(10_000, frag_prob=1.0, rng=np.random.default_rng(0))
        extents = alloc.allocate(5)
        assert len(extents) == 5
        assert all(e.n_blocks == 1 for e in extents)

    def test_exhaustion_raises(self):
        alloc = SequentialAllocator(10)
        with pytest.raises(LayoutError):
            alloc.allocate(11)

    def test_bad_params(self):
        with pytest.raises(LayoutError):
            SequentialAllocator(0)
        with pytest.raises(LayoutError):
            SequentialAllocator(10, frag_prob=1.5)
        with pytest.raises(LayoutError):
            SequentialAllocator(10).allocate(0)

    @given(
        frag=st.floats(min_value=0.0, max_value=1.0),
        size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40)
    def test_allocation_covers_exactly_size(self, frag, size):
        alloc = SequentialAllocator(
            100_000, frag_prob=frag, rng=np.random.default_rng(1)
        )
        extents = alloc.allocate(size)
        assert sum(e.n_blocks for e in extents) == size
        # extents strictly increase and never overlap
        for a, b in zip(extents, extents[1:]):
            assert b.start > a.end - 1


class TestLayout:
    def test_build_assigns_sequential_ids(self):
        layout = FileSystemLayout.build([4, 2, 8], 1000)
        assert layout.n_files == 3
        assert layout.file(1).size_blocks == 2
        assert layout.footprint_blocks == 14

    def test_unknown_file_rejected(self):
        layout = FileSystemLayout.build([4], 1000)
        with pytest.raises(LayoutError):
            layout.file(1)

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            FileSystemLayout.build([], 1000)

    def test_observed_fragmentation_close_to_requested(self):
        rng = np.random.default_rng(3)
        layout = FileSystemLayout.build(
            [16] * 500, 100_000, frag_prob=0.1, rng=rng
        )
        assert layout.fragmentation_observed == pytest.approx(0.1, abs=0.02)

    def test_partial_runs(self):
        layout = FileSystemLayout.build([8], 100)
        assert layout.partial_runs(0, 2, 3) == [(2, 3)]


class TestBitmapBuilder:
    def test_contiguous_file_sets_all_but_first(self):
        layout = FileSystemLayout.build([8], 1000)
        striping = StripingLayout(1, 1 << 20, 1000)
        bitmap = build_bitmaps(layout, striping)[0]
        assert not bitmap.is_continuation(0)
        assert all(bitmap.is_continuation(b) for b in range(1, 8))
        assert not bitmap.is_continuation(8)

    def test_file_boundary_clears_bit(self):
        layout = FileSystemLayout.build([4, 4], 1000)
        striping = StripingLayout(1, 1 << 20, 1000)
        bitmap = build_bitmaps(layout, striping)[0]
        # block 4 starts the second file: not a continuation
        assert not bitmap.is_continuation(4)
        assert bitmap.is_continuation(5)

    def test_striping_unit_boundary_clears_bit(self):
        # 2 disks, 4-block units; an 8-block file crosses one boundary.
        layout = FileSystemLayout.build([8], 1000)
        striping = StripingLayout(2, 4, 1000)
        bitmaps = build_bitmaps(layout, striping)
        # disk 0 holds physical 0..3 (logical 0..3): bits 1..3 set
        assert not bitmaps[0].is_continuation(0)
        assert bitmaps[0].is_continuation(3)
        # disk 1 holds logical 4..7 at physical 0..3: bit 0 clear (the
        # file hops disks), bits 1..3 set
        assert not bitmaps[1].is_continuation(0)
        assert bitmaps[1].is_continuation(1)

    def test_fragmentation_clears_bits(self):
        rng = np.random.default_rng(0)
        layout = FileSystemLayout.build([32] * 50, 100_000, frag_prob=0.5, rng=rng)
        striping = StripingLayout(1, 1 << 20, 100_000)
        bitmap = build_bitmaps(layout, striping)[0]
        # roughly half the intra-file boundaries must be clear
        total_boundaries = 50 * 31
        assert bitmap.ones() < 0.75 * total_boundaries

    def test_wide_stripe_single_unit_keeps_file_whole(self):
        layout = FileSystemLayout.build([8], 1000)
        striping = StripingLayout(4, 32, 1000)  # unit holds the file
        bitmaps = build_bitmaps(layout, striping)
        assert bitmaps[0].ones() == 7

    def test_measured_runs_match_expectation_at_zero_frag(self):
        layout = FileSystemLayout.build([16] * 100, 10_000)
        striping = StripingLayout(1, 1 << 20, 10_000)
        assert measure_sequential_runs(layout, striping) == pytest.approx(16.0)

    def test_measured_runs_shrink_with_striping(self):
        layout = FileSystemLayout.build([16] * 100, 10_000)
        narrow = StripingLayout(4, 4, 10_000)  # 4-block units
        assert measure_sequential_runs(layout, narrow) == pytest.approx(4.0)
