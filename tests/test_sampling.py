"""Queue-depth sampling during replay."""

import pytest

from repro.config import ArrayParams, make_config
from repro.errors import ConfigError
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.metrics.sampling import LoadSample, QueueDepthSampler
from repro.units import KB
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


def make_system(small_disk, small_cache, n_disks=2):
    config = make_config(
        disk=small_disk,
        cache=small_cache,
        array=ArrayParams(n_disks=n_disks, striping_unit_bytes=16 * KB),
        seed=8,
    )
    return System(config)


def test_interval_validated(small_disk, small_cache):
    system = make_system(small_disk, small_cache)
    with pytest.raises(ConfigError):
        QueueDepthSampler(system, interval_ms=0)


def test_samples_collected_during_replay(small_disk, small_cache):
    system = make_system(small_disk, small_cache)
    sampler = QueueDepthSampler(system, interval_ms=1.0)
    records = [DiskAccess([(i * 8, 2)]) for i in range(60)]
    trace = Trace(records, TraceMeta(n_streams=8, coalesce_prob=1.0))
    ReplayDriver(system, trace).run()
    sampler.stop()
    assert len(sampler.samples) > 5
    assert all(len(s.queue_depths) == 2 for s in sampler.samples)


def test_outstanding_counts_busy_drive(small_disk, small_cache):
    sample = LoadSample(1.0, queue_depths=[3, 0], busy_flags=[True, False])
    assert sample.outstanding == [4, 0]


def test_stop_cancels_future_ticks(small_disk, small_cache):
    system = make_system(small_disk, small_cache)
    sampler = QueueDepthSampler(system, interval_ms=1.0)
    sampler.stop()
    system.sim.run()  # drains instantly; no self-rescheduling left
    assert system.sim.pending == 0
    assert sampler.samples == []


def test_imbalance_metrics(small_disk, small_cache):
    system = make_system(small_disk, small_cache)
    sampler = QueueDepthSampler(system, interval_ms=1.0)
    # all load aimed at disk 0 (blocks within the first striping unit)
    records = [DiskAccess([(0, 1)], is_write=True) for _ in range(40)]
    trace = Trace(records, TraceMeta(n_streams=8, coalesce_prob=1.0))
    ReplayDriver(system, trace).run()
    sampler.stop()
    means = sampler.mean_outstanding_per_disk()
    assert means[0] > means[1]
    assert sampler.imbalance() > 1.5


def test_imbalance_defaults_to_balanced(small_disk, small_cache):
    system = make_system(small_disk, small_cache)
    sampler = QueueDepthSampler(system, interval_ms=1.0)
    sampler.stop()
    assert sampler.imbalance() == 1.0
