"""Load generation: specs, shaping, streams, CLI, characterization."""

import math
from itertools import islice

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ingest.characterize import characterize
from repro.loadgen import (
    ClientClass,
    PopulationSpec,
    RateShaper,
    ShaperSpec,
    build_layout,
    expand_burst_windows,
    generate_records,
    population_trace,
    preset_population,
    spec_meta,
)
from repro.loadgen.cli import main as loadgen_main
from repro.sim.rng import RandomStreams
from repro.workloads.trace import TimedAccess, open_trace, record_to_json
from repro.workloads.zipf import ZipfSampler

GOLDEN_DIR = "tests/golden"


def small_spec(**overrides):
    defaults = dict(n_clients=400, n_requests=300, n_files=120, mean_file_kb=32.0)
    defaults.update(overrides)
    return preset_population("web3", **defaults)


class TestSpec:
    def test_presets_validate(self):
        for name in ("web3", "uniform"):
            preset_population(name).validate()

    def test_unknown_preset_rejected(self):
        with pytest.raises(WorkloadError, match="unknown population preset"):
            preset_population("nope")

    def test_class_population_sums_exactly(self):
        for n in (1, 7, 999, 12_345):
            spec = preset_population("web3", n_clients=n)
            counts = spec.class_population()
            assert sum(counts.values()) == n

    def test_class_population_follows_weights(self):
        counts = preset_population("web3", n_clients=100_000).class_population()
        assert counts["interactive"] == 70_000
        assert counts["api"] == 25_000
        assert counts["batch"] == 5_000

    def test_offered_rate_scales_linearly(self):
        small = preset_population("web3", n_clients=10_000).offered_rate_req_s()
        large = preset_population("web3", n_clients=1_000_000).offered_rate_req_s()
        assert large == pytest.approx(100 * small, rel=1e-6)

    def test_bad_class_rejected(self):
        with pytest.raises(WorkloadError, match="write_fraction"):
            ClientClass(name="x", write_fraction=1.5).validate()
        with pytest.raises(WorkloadError, match="mean_session_requests"):
            ClientClass(name="x", mean_session_requests=0.5).validate()

    def test_duplicate_class_names_rejected(self):
        cls = ClientClass(name="dup")
        with pytest.raises(WorkloadError, match="duplicate"):
            PopulationSpec(classes=(cls, cls)).validate()

    def test_amplitude_cap(self):
        with pytest.raises(WorkloadError, match="diurnal_amplitude"):
            ShaperSpec(diurnal_period_ms=1000.0, diurnal_amplitude=0.99).validate()


class TestRateShaper:
    def test_identity_when_unconfigured(self):
        shaper = RateShaper(ShaperSpec())
        for u in (0.0, 1.5, 100.0, 1e6):
            assert shaper.warp(u) == u

    def test_warp_inverts_cumulative(self):
        spec = ShaperSpec(
            diurnal_period_ms=10_000.0,
            diurnal_amplitude=0.8,
            burst_rate_per_hour=600.0,
            burst_magnitude=5.0,
            burst_duration_ms=2_000.0,
            horizon_ms=120_000.0,
        )
        shaper = RateShaper(spec, seed=3)
        assert shaper.windows  # the schedule actually has bursts
        us = np.cumsum(np.random.default_rng(0).exponential(50.0, size=500))
        last_t = 0.0
        for u in us:
            t = shaper.warp(float(u))
            assert t >= last_t  # warped arrivals stay ordered
            assert shaper.cumulative(t) == pytest.approx(float(u), abs=1e-3)
            last_t = t

    def test_bursts_compress_arrivals(self):
        """Equal u-gaps map to shorter t-gaps inside a burst window."""
        spec = ShaperSpec(
            burst_rate_per_hour=3600.0,  # gap mean 1s, 30s windows
            burst_magnitude=9.0,
            burst_duration_ms=30_000.0,
            horizon_ms=60_000.0,
        )
        shaper = RateShaper(spec, seed=1)
        start, end = shaper.windows[0]
        inside = shaper.cumulative(min(end, start + 10.0)) - shaper.cumulative(start)
        before = shaper.cumulative(start) - shaper.cumulative(max(0.0, start - 10.0))
        assert inside > before  # more warped time accrues during the burst

    def test_burst_schedule_deterministic(self):
        spec = ShaperSpec(burst_rate_per_hour=120.0)
        assert expand_burst_windows(spec, 7) == expand_burst_windows(spec, 7)
        assert expand_burst_windows(spec, 7) != expand_burst_windows(spec, 8)

    def test_diurnal_integral_closed_form(self):
        spec = ShaperSpec(diurnal_period_ms=1000.0, diurnal_amplitude=0.5)
        shaper = RateShaper(spec)
        # Over a whole period the sinusoid integrates to zero.
        assert shaper.cumulative(1000.0) == pytest.approx(1000.0)
        # Quarter period: t + A*(P/2pi)*(1 - cos(pi/2))
        expected = 250.0 + 0.5 * (1000.0 / (2 * math.pi))
        assert shaper.cumulative(250.0) == pytest.approx(expected)


class TestZipfSharing:
    def test_iter_ranks_matches_sample_draw_for_draw(self):
        """One Zipf implementation: the lazy stream consumes the RNG
        exactly like the vectorised ``sample`` call."""
        seed = 99
        lazy = ZipfSampler(500, 0.8, rng=RandomStreams(seed).stream("z"))
        eager = ZipfSampler(500, 0.8, rng=RandomStreams(seed).stream("z"))
        assert list(islice(lazy.iter_ranks(chunk=7), 100)) == list(
            eager.sample(100)
        )

    def test_iter_ranks_rejects_bad_chunk(self):
        with pytest.raises(WorkloadError, match="chunk"):
            next(ZipfSampler(10, 1.0).iter_ranks(chunk=0))


class TestGeneration:
    def test_deterministic_byte_for_byte(self):
        spec = small_spec()
        a = [record_to_json(r) for r in generate_records(spec, 5)]
        b = [record_to_json(r) for r in generate_records(spec, 5)]
        assert a == b

    def test_seed_changes_stream(self):
        spec = small_spec()
        a = [record_to_json(r) for r in generate_records(spec, 5)]
        b = [record_to_json(r) for r in generate_records(spec, 6)]
        assert a != b

    def test_timestamps_nondecreasing_and_capped(self):
        spec = small_spec()
        records = list(generate_records(spec, 2))
        assert len(records) == spec.n_requests
        ts = [r.timestamp_ms for r in records]
        assert all(a <= b for a, b in zip(ts, ts[1:]))
        assert all(isinstance(r, TimedAccess) for r in records)

    def test_records_stay_inside_layout(self):
        spec = small_spec()
        layout = build_layout(spec, 11)
        for record in generate_records(spec, 11, layout=layout):
            for start, length in record.runs:
                assert 0 <= start < layout.total_blocks
                assert length >= 1

    def test_write_only_class_writes(self):
        spec = PopulationSpec(
            name="writers",
            n_clients=50,
            classes=(ClientClass(name="w", write_fraction=1.0),),
            n_requests=80,
            n_files=40,
        )
        assert all(r.is_write for r in generate_records(spec, 1))

    def test_population_scales_offered_rate(self):
        """10x the clients => roughly 10x the arrival rate."""

        def span(n_clients):
            spec = small_spec(n_clients=n_clients, n_requests=250)
            records = list(generate_records(spec, 3))
            return records[-1].timestamp_ms - records[0].timestamp_ms

        ratio = span(200) / span(2000)
        assert 4.0 < ratio < 25.0  # ~10x, loose statistical bounds

    def test_zero_weight_rounding_raises_cleanly(self):
        spec = PopulationSpec(
            name="tiny",
            n_clients=1,
            classes=(
                ClientClass(name="a", weight=1.0),
                ClientClass(name="b", weight=1e-9),
            ),
            n_requests=10,
            n_files=10,
        )
        # class b rounds to zero seats; class a still generates
        assert len(list(generate_records(spec, 1))) == 10

    def test_all_classes_appear(self):
        """Every class with seats eventually emits (merge interleaves)."""
        spec = small_spec(n_requests=400)
        layout, trace = population_trace(spec, 4)
        # batch is 5% of 400 clients = 20 seats; its 256-KB requests are
        # unmistakably larger than interactive/api ones.
        sizes = {sum(n for _, n in r.runs) for r in trace}
        assert len(sizes) > 3

    def test_meta_records_population(self):
        spec = small_spec()
        layout = build_layout(spec, 1)
        meta = spec_meta(spec, layout)
        assert meta.name == "loadgen:web3"
        assert meta.extra["n_clients"] == spec.n_clients
        assert meta.footprint_blocks == layout.footprint_blocks


class TestCharacterization:
    def test_characterize_golden_three_class(self):
        """The small 3-class population's report is pinned byte-for-byte."""
        spec = small_spec()
        report = characterize(
            generate_records(spec, 7), name="loadgen:web3 small"
        ).describe()
        golden = f"{GOLDEN_DIR}/loadgen_stats_small.txt"
        with open(golden) as fh:
            assert report == fh.read().rstrip("\n")

    def test_characterization_deterministic(self):
        spec = small_spec()
        a = characterize(generate_records(spec, 7), name="x").describe()
        b = characterize(generate_records(spec, 7), name="x").describe()
        assert a == b


class TestCli:
    def test_emit_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "pop.jsonl.gz"
        rc = loadgen_main(
            ["emit", "--spec", "web3", "--clients", "300", "--requests", "120",
             "--files", "80", "--seed", "3", str(out)]
        )
        assert rc == 0
        assert "120 records" in capsys.readouterr().out
        meta, records = open_trace(out)
        records = list(records)
        assert meta.name == "loadgen:web3"
        assert len(records) == 120
        assert all(isinstance(r, TimedAccess) for r in records)

    def test_stats_deterministic(self, tmp_path, capsys):
        argv = ["stats", "--spec", "web3", "--clients", "300",
                "--requests", "150", "--files", "80", "--seed", "9"]
        assert loadgen_main(argv) == 0
        first = capsys.readouterr().out
        assert loadgen_main(argv) == 0
        assert capsys.readouterr().out == first
        assert "workload characterization" in first

    def test_emitted_trace_replays(self, tmp_path, small_config, capsys):
        """End to end: emit -> ingest replay path accepts the file."""
        from repro.ingest.cli import main as ingest_main

        out = tmp_path / "pop.jsonl"
        assert loadgen_main(
            ["emit", "--clients", "200", "--requests", "60", "--files", "50",
             str(out)]
        ) == 0
        capsys.readouterr()
        assert ingest_main(
            ["replay", str(out), "--technique", "segm", "--accel", "4"]
        ) == 0
        assert "records=60" in capsys.readouterr().out
