"""Unit-conversion helpers."""

import pytest

from repro import units


def test_binary_units_are_powers_of_1024():
    assert units.KB == 1024
    assert units.MB == 1024 ** 2
    assert units.GB == 1024 ** 3


def test_rate_conversion_round_trips():
    rate = units.mb_per_s_to_bytes_per_ms(54.0)
    assert rate == pytest.approx(54_000.0)
    assert units.bytes_per_ms_to_mb_per_s(rate) == pytest.approx(54.0)


def test_rpm_to_rotation_ms_matches_datasheet():
    # 15000 rpm -> 4 ms per rotation (the 36Z15 figure).
    assert units.rpm_to_rotation_ms(15000) == pytest.approx(4.0)


def test_rpm_must_be_positive():
    with pytest.raises(ValueError):
        units.rpm_to_rotation_ms(0)


def test_bytes_to_blocks_rounds_up():
    assert units.bytes_to_blocks(1, 4096) == 1
    assert units.bytes_to_blocks(4096, 4096) == 1
    assert units.bytes_to_blocks(4097, 4096) == 2
    assert units.bytes_to_blocks(0, 4096) == 0


def test_bytes_to_blocks_rejects_bad_inputs():
    with pytest.raises(ValueError):
        units.bytes_to_blocks(-1, 4096)
    with pytest.raises(ValueError):
        units.bytes_to_blocks(10, 0)


def test_blocks_to_bytes_is_inverse_for_multiples():
    assert units.blocks_to_bytes(3, 4096) == 12288


def test_fmt_bytes_picks_sensible_unit():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(4096) == "4.0 KB"
    assert units.fmt_bytes(4 * units.MB) == "4.0 MB"


def test_fmt_ms_switches_to_seconds():
    assert "ms" in units.fmt_ms(3.4)
    assert "s" in units.fmt_ms(12_000.0)
    assert "ms" not in units.fmt_ms(12_000.0)
