"""Disk-controller behaviour: caching, read-ahead, writes, HDC commands."""

import pytest

from repro.bus.scsi import ScsiBus
from repro.cache.block import BlockCache
from repro.cache.pinned import PinnedRegion
from repro.config import BusParams, DiskParams
from repro.controller.commands import DiskCommand
from repro.controller.controller import DiskController, _contiguous_runs
from repro.disk.drive import DiskDrive
from repro.errors import SimulationError
from repro.mechanics.service import ServiceTimeModel
from repro.readahead.blind import BlindReadAhead
from repro.readahead.none import NoReadAhead
from repro.scheduling.look import LookScheduler
from repro.sim.engine import Simulator
from repro.units import KB, MB


def make_controller(
    readahead=None,
    cache_blocks=64,
    hdc_blocks=0,
    dispatch_recheck=False,
):
    sim = Simulator()
    disk = DiskParams(capacity_bytes=64 * MB)
    service = ServiceTimeModel(disk, 4 * KB, deterministic_rotation=True)
    drive = DiskDrive(0, sim, service)
    bus = ScsiBus(sim, BusParams())
    controller = DiskController(
        disk_id=0,
        sim=sim,
        drive=drive,
        scheduler=LookScheduler(),
        cache=BlockCache(cache_blocks),
        readahead=readahead or BlindReadAhead(8),
        bus=bus,
        block_size=4 * KB,
        pinned=PinnedRegion(hdc_blocks),
        dispatch_recheck=dispatch_recheck,
    )
    return sim, controller


def submit_and_run(sim, controller, cmd):
    done = []
    cmd.on_complete = lambda c: done.append(sim.now)
    controller.submit(cmd)
    sim.run()
    assert len(done) == 1, "command must complete exactly once"
    return done[0]


class TestContiguousRuns:
    def test_empty(self):
        assert _contiguous_runs([]) == []

    def test_single_run(self):
        assert _contiguous_runs([3, 4, 5]) == [(3, 3)]

    def test_multiple_runs(self):
        assert _contiguous_runs([1, 2, 5, 9, 10]) == [(1, 2), (5, 1), (9, 2)]


class TestReadPath:
    def test_miss_reads_media_with_readahead(self):
        sim, controller = make_controller(readahead=BlindReadAhead(8))
        submit_and_run(sim, controller, DiskCommand(0, 100, 2))
        assert controller.stats.media_reads == 1
        assert controller.stats.media_blocks_read == 8
        assert controller.stats.readahead_blocks == 6
        # the read-ahead blocks are now cached
        assert controller.cache.contains(107)

    def test_second_read_hits_cache(self):
        sim, controller = make_controller(readahead=BlindReadAhead(8))
        submit_and_run(sim, controller, DiskCommand(0, 100, 2))
        t = submit_and_run(sim, controller, DiskCommand(0, 104, 4))
        assert controller.stats.media_reads == 1  # no second media op
        assert controller.stats.full_cache_hits == 1

    def test_cache_hit_is_fast(self):
        sim, controller = make_controller()
        t_miss = submit_and_run(sim, controller, DiskCommand(0, 100, 2))
        start = sim.now
        t_hit = submit_and_run(sim, controller, DiskCommand(0, 100, 2)) - start
        assert t_hit < t_miss / 5

    def test_wrong_disk_rejected(self):
        _sim, controller = make_controller()
        with pytest.raises(SimulationError):
            controller.submit(DiskCommand(3, 0, 1))

    def test_command_past_disk_end_rejected(self):
        _sim, controller = make_controller()
        n = controller.drive.geometry.n_blocks
        with pytest.raises(SimulationError):
            controller.submit(DiskCommand(0, n - 1, 4))

    def test_stats_counters(self):
        sim, controller = make_controller()
        submit_and_run(sim, controller, DiskCommand(0, 0, 4))
        assert controller.stats.commands == 1
        assert controller.stats.read_commands == 1
        assert controller.stats.blocks_requested == 4

    def test_partial_hit_reads_only_missing_span(self):
        sim, controller = make_controller(readahead=NoReadAhead())
        submit_and_run(sim, controller, DiskCommand(0, 100, 4))  # cache 100..103
        submit_and_run(sim, controller, DiskCommand(0, 102, 4))  # 104,105 missing
        assert controller.stats.media_blocks_read == 4 + 2


class TestDispatchRecheck:
    def test_recheck_absorbs_queued_duplicates(self):
        sim, controller = make_controller(
            readahead=BlindReadAhead(8), dispatch_recheck=True
        )
        done = []
        first = DiskCommand(0, 100, 2, on_complete=lambda c: done.append("a"))
        second = DiskCommand(0, 104, 2, on_complete=lambda c: done.append("b"))
        controller.submit(first)
        controller.submit(second)  # queued behind; covered by first's RA
        sim.run()
        assert sorted(done) == ["a", "b"]
        assert controller.stats.media_reads == 1
        assert controller.stats.dispatch_cache_hits == 1

    def test_without_recheck_queued_read_hits_media(self):
        sim, controller = make_controller(
            readahead=BlindReadAhead(8), dispatch_recheck=False
        )
        controller.submit(DiskCommand(0, 100, 2, on_complete=lambda c: None))
        controller.submit(DiskCommand(0, 104, 2, on_complete=lambda c: None))
        sim.run()
        assert controller.stats.media_reads == 2
        assert controller.stats.dispatch_cache_hits == 0


class TestWritePath:
    def test_write_goes_to_media(self):
        sim, controller = make_controller()
        submit_and_run(sim, controller, DiskCommand(0, 50, 4, is_write=True))
        assert controller.stats.media_writes == 1
        assert controller.stats.media_blocks_written == 4
        assert controller.stats.write_commands == 1

    def test_write_has_no_readahead(self):
        sim, controller = make_controller(readahead=BlindReadAhead(32))
        submit_and_run(sim, controller, DiskCommand(0, 50, 2, is_write=True))
        assert controller.stats.media_blocks_written == 2
        assert controller.stats.readahead_blocks == 0

    def test_write_to_pinned_block_absorbed(self):
        sim, controller = make_controller(hdc_blocks=8)
        controller.pin_blocks([50, 51])
        submit_and_run(sim, controller, DiskCommand(0, 50, 2, is_write=True))
        assert controller.stats.media_writes == 0
        assert controller.stats.hdc_write_absorbed == 2
        assert controller.pinned.dirty_count() == 2

    def test_mixed_write_splits_around_pinned(self):
        sim, controller = make_controller(hdc_blocks=8)
        controller.pin_blocks([51])
        submit_and_run(sim, controller, DiskCommand(0, 50, 3, is_write=True))
        # blocks 50 and 52 hit media as two separate runs
        assert controller.stats.media_writes == 2
        assert controller.stats.media_blocks_written == 2
        assert controller.pinned.dirty_count() == 1


class TestHdcCommands:
    def test_pinned_read_served_without_media(self):
        sim, controller = make_controller(hdc_blocks=8)
        controller.pin_blocks([100, 101])
        submit_and_run(sim, controller, DiskCommand(0, 100, 2))
        assert controller.stats.media_reads == 0
        assert controller.stats.hdc_block_hits == 2
        assert controller.stats.full_cache_hits == 1

    def test_pin_invalidates_main_cache_copy(self):
        sim, controller = make_controller(hdc_blocks=8)
        submit_and_run(sim, controller, DiskCommand(0, 100, 2))
        assert controller.cache.contains(100)
        controller.pin_blocks([100])
        assert not controller.cache.contains(100)
        assert controller.pinned.is_pinned(100)

    def test_timed_pin_load_costs_media_reads(self):
        sim, controller = make_controller(hdc_blocks=8)
        done = []
        controller.pin_blocks([10, 11, 40], timed=True, on_complete=lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert controller.stats.media_reads == 2  # runs (10,11) and (40,)
        assert sim.now > 0

    def test_flush_writes_dirty_runs(self):
        sim, controller = make_controller(hdc_blocks=8)
        controller.pin_blocks([10, 11, 40])
        submit_and_run(sim, controller, DiskCommand(0, 10, 2, is_write=True))
        submit_and_run(sim, controller, DiskCommand(0, 40, 1, is_write=True))
        done = []
        n = controller.flush_hdc(lambda: done.append(1))
        sim.run()
        assert n == 3
        assert done == [1]
        assert controller.stats.media_writes == 2  # two contiguous runs
        assert controller.stats.flush_blocks_written == 3
        assert controller.pinned.dirty_count() == 0

    def test_flush_with_nothing_dirty_completes_immediately(self):
        sim, controller = make_controller(hdc_blocks=8)
        done = []
        assert controller.flush_hdc(lambda: done.append(1)) == 0
        sim.run()
        assert done == [1]

    def test_unpin(self):
        sim, controller = make_controller(hdc_blocks=8)
        controller.pin_blocks([5])
        controller.unpin_blocks([5])
        assert not controller.pinned.is_pinned(5)


class TestCompletionDiscipline:
    def test_double_completion_raises(self):
        cmd = DiskCommand(0, 0, 1)
        cmd.finish(1.0)
        with pytest.raises(SimulationError):
            cmd.finish(2.0)

    def test_latency_available_after_completion(self):
        sim, controller = make_controller()
        cmd = DiskCommand(0, 0, 1)
        submit_and_run(sim, controller, cmd)
        assert cmd.latency > 0
        assert cmd.completed_at == sim.now

    def test_latency_before_completion_raises(self):
        with pytest.raises(SimulationError):
            _ = DiskCommand(0, 0, 1).latency
