"""Open-loop replay: timestamp-driven admission, accel, determinism."""

import pytest

from repro.errors import WorkloadError
from repro.host.openloop import OpenLoopDriver
from repro.host.system import System
from repro.obs.tracer import Tracer, tracing
from repro.workloads.trace import DiskAccess, TimedAccess, Trace, TraceMeta


def timed_trace(n=20, gap_ms=5.0, stride=64):
    records = [
        TimedAccess([((i * stride) % 4096, 8)], i % 3 == 0, i * gap_ms)
        for i in range(n)
    ]
    return Trace(records, TraceMeta(n_streams=4, coalesce_prob=0.0))


class TestOpenLoopDriver:
    def test_rejects_untimed_trace(self, small_config):
        trace = Trace(
            [DiskAccess([(0, 8)])], TraceMeta(coalesce_prob=0.0)
        )
        system = System(small_config)
        with pytest.raises(WorkloadError, match="timed trace"):
            OpenLoopDriver(system, trace)

    def test_rejects_empty_trace(self, small_config):
        """Regression: an empty timed trace must be a clear
        WorkloadError, not a bare IndexError on ``trace[0]``."""
        trace = Trace([], TraceMeta(coalesce_prob=0.0))
        system = System(small_config)
        with pytest.raises(WorkloadError, match="empty timed trace"):
            OpenLoopDriver(system, trace)

    def test_rejects_nonpositive_accel(self, small_config):
        system = System(small_config)
        with pytest.raises(WorkloadError, match="accel"):
            OpenLoopDriver(system, timed_trace(), accel=0.0)

    def test_completes_every_record(self, small_config):
        system = System(small_config)
        driver = OpenLoopDriver(system, timed_trace(30))
        driver.run()
        assert driver.records_admitted == 30
        assert driver.records_completed == 30
        assert driver.in_flight == 0

    def test_admission_follows_timestamps(self, small_config):
        """With widely spaced arrivals the run lasts at least as long as
        the trace — completions never pull arrivals forward."""
        system = System(small_config)
        elapsed = OpenLoopDriver(system, timed_trace(10, gap_ms=50.0)).run()
        assert elapsed >= 9 * 50.0

    def test_accel_compresses_arrivals(self, small_config):
        slow = OpenLoopDriver(
            System(small_config), timed_trace(10, gap_ms=50.0)
        ).run()
        fast = OpenLoopDriver(
            System(small_config), timed_trace(10, gap_ms=50.0), accel=10.0
        ).run()
        assert fast < slow / 2

    def test_second_run_raises_instead_of_hanging(self, small_config):
        """Regression: rerunning a finished driver admitted nothing but
        let background timers keep the engine alive forever."""
        system = System(small_config)
        driver = OpenLoopDriver(system, timed_trace(10))
        driver.run()
        with pytest.raises(WorkloadError, match="already ran"):
            driver.run()

    def test_bad_accel_leaves_lazy_source_untouched(self, small_config):
        """Regression: accel was validated only after the base
        constructor had consumed the source's first record, so a lazy
        iterator the caller retried with (after fixing the accel) had
        silently lost its head."""
        taken = []

        def source():
            for record in timed_trace(5).records:
                taken.append(record)
                yield record

        generator = source()
        system = System(small_config)
        with pytest.raises(WorkloadError, match="accel"):
            OpenLoopDriver(system, generator, accel=0.0, coalesce_prob=0.0)
        assert taken == []  # nothing consumed: the retry sees it all
        driver = OpenLoopDriver(system, generator, coalesce_prob=0.0)
        driver.run()
        assert driver.records_completed == 5

    def test_deterministic_across_runs(self, small_config):
        results = []
        for _ in range(2):
            system = System(small_config)
            driver = OpenLoopDriver(system, timed_trace(25, gap_ms=2.0))
            elapsed = driver.run()
            results.append((elapsed, tuple(driver.record_latencies_ms)))
        assert results[0] == results[1]

    def test_straggler_does_not_shift_later_arrivals(self, small_config):
        """Regression: a reordered-capture straggler must issue
        immediately without pushing later records off the trace's
        absolute schedule.

        The old pump chained relative deltas and clamped the negative
        gap to zero, so every record after the straggler arrived late by
        the straggler's backwards jump (here record 3 at 245 ms instead
        of 150 ms).
        """
        records = [
            TimedAccess([(0, 8)], False, 0.0),
            TimedAccess([(64, 8)], False, 100.0),
            TimedAccess([(128, 8)], False, 5.0),  # captured out of order
            TimedAccess([(192, 8)], False, 150.0),
        ]
        trace = Trace(records, TraceMeta(coalesce_prob=0.0))
        tracer = Tracer()
        with tracing(tracer):
            system = System(small_config)
            driver = OpenLoopDriver(system, trace)
            driver.run()
        admits = {
            e[7]["record"]: e[4]
            for e in tracer.events
            if e[3] == "replay.admit"
        }
        assert admits[1] == pytest.approx(100.0)
        # The straggler issues as soon as its lateness is discovered —
        # in the same arrival event as record 1, never by time travel.
        assert admits[2] == pytest.approx(100.0)
        # Record 3 stays on the absolute timeline: 150 ms, not 245 ms.
        assert admits[3] == pytest.approx(150.0)

    def test_same_instant_arrivals_admitted_together(self, small_config):
        """A run of identical timestamps is admitted inside one arrival
        event: every admit instant carries the same simulated time."""
        records = [TimedAccess([(0, 8)], False, 0.0)] + [
            TimedAccess([(i * 64, 8)], False, 10.0) for i in range(1, 6)
        ]
        trace = Trace(records, TraceMeta(coalesce_prob=0.0))
        tracer = Tracer()
        with tracing(tracer):
            system = System(small_config)
            OpenLoopDriver(system, trace).run()
        admit_times = [
            e[4] for e in tracer.events if e[3] == "replay.admit"
        ]
        assert admit_times[0] == pytest.approx(0.0)
        assert admit_times[1:] == pytest.approx([10.0] * 5)

    def test_batched_pump_deterministic_and_matches_closed_loop_seed(
        self, small_config
    ):
        """Same-seed determinism over the batched pump, for both loops:
        repeated closed-loop runs agree, repeated open-loop runs (with
        same-instant batches) agree."""
        from repro.host.streams import ReplayDriver

        def batched_trace():
            # bursts of three records per instant exercise the batch path
            return Trace(
                [
                    TimedAccess(
                        [((i * 64) % 4096, 8)], i % 4 == 0, (i // 3) * 4.0
                    )
                    for i in range(24)
                ],
                TraceMeta(n_streams=4, coalesce_prob=0.5),
            )

        open_results = []
        closed_results = []
        for _ in range(2):
            system = System(small_config)
            driver = OpenLoopDriver(system, batched_trace())
            elapsed = driver.run()
            open_results.append(
                (elapsed, tuple(driver.record_latencies_ms))
            )
            system = System(small_config)
            closed = ReplayDriver(system, batched_trace())
            elapsed = closed.run()
            closed_results.append(
                (elapsed, tuple(closed.record_latencies_ms))
            )
        assert open_results[0] == open_results[1]
        assert closed_results[0] == closed_results[1]

    def test_mid_trace_untimed_record_rejected(self, small_config):
        records = [
            TimedAccess([(0, 8)], False, 0.0),
            DiskAccess([(64, 8)]),
            TimedAccess([(128, 8)], False, 2.0),
        ]
        trace = Trace(records, TraceMeta(coalesce_prob=0.0))
        system = System(small_config)
        driver = OpenLoopDriver(system, trace)
        with pytest.raises(WorkloadError, match="no timestamp"):
            driver.run()

    def test_admit_instants_traced(self, small_config):
        tracer = Tracer()
        with tracing(tracer):
            system = System(small_config)
            OpenLoopDriver(system, timed_trace(12)).run()
        admits = [e for e in tracer.events if e[3] == "replay.admit"]
        assert len(admits) == 12
        assert [e[7]["record"] for e in admits] == list(range(12))


class TestRunnerIntegration:
    def test_runner_open_loop_path(self, small_config):
        from repro.experiments.runner import TechniqueRunner
        from repro.experiments.techniques import SEGM
        from repro.fs.layout import FileSystemLayout

        trace = timed_trace(20)
        layout = FileSystemLayout.build(
            [8] * 16, small_config.array_blocks
        )
        runner = TechniqueRunner(layout, trace)
        open_res = runner.run(small_config, SEGM, open_loop=True, accel=2.0)
        closed_res = runner.run(small_config, SEGM)
        assert open_res.records == closed_res.records == 20
        # both paths report through the same collector
        assert open_res.io_time_ms > 0
        assert len(open_res.record_latencies_ms) == 20
