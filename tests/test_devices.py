"""The device-model layer: registry, HDD equivalence, flash models.

Three contracts are pinned here:

* the registry builds the right model per :class:`DeviceKind` and the
  named presets carry the paper's Table 1 figures;
* :class:`HddDeviceModel` is *draw-for-draw* identical to the
  ``ServiceTimeModel`` it replaced (same RNG stream → same breakdowns),
  which is what keeps the committed goldens byte-stable;
* :class:`FlashServiceModel` is flat (address-independent), asymmetric
  (writes cost more than reads) and seekless, and its
  :class:`FlatGeometry` collapses the cylinder space so cylinder-aware
  schedulers degrade to FIFO.
"""

import numpy as np
import pytest

from repro.config import (
    DEVICE_PRESETS,
    GENERIC_NVME,
    GENERIC_SSD,
    ULTRASTAR_36Z15,
    DeviceKind,
    DiskParams,
    SsdParams,
    device_preset,
    ultrastar_36z15_config,
)
from repro.devices import (
    DEVICE_MODELS,
    FlashServiceModel,
    FlatGeometry,
    HddDeviceModel,
    make_device_model,
    register_device,
)
from repro.errors import AddressError, ConfigError
from repro.mechanics.service import ServiceTimeModel
from repro.units import KB, MB

BLOCK = 4 * KB


# -- presets ------------------------------------------------------------


def test_ultrastar_preset_matches_paper_table1():
    """The named preset carries the §6.1 / Table 1 datasheet figures."""
    spec = device_preset("ultrastar_36z15")
    assert spec is ULTRASTAR_36Z15
    assert spec.kind is DeviceKind.HDD
    hdd = spec.hdd
    assert hdd is not None
    assert hdd.capacity_bytes == 18_000_000_000
    assert hdd.rpm == 15000.0
    assert hdd.rotation_ms == pytest.approx(4.0)
    assert hdd.sectors_per_track == 440
    assert hdd.transfer_rate_mb_s == 54.0
    # The fitted three-regime seek curve (Ruemmler & Wilkes form).
    assert hdd.seek.alpha == pytest.approx(0.9336)
    assert hdd.seek.beta == pytest.approx(0.0364)
    assert hdd.seek.gamma == pytest.approx(1.5503)
    assert hdd.seek.delta == pytest.approx(0.00054)
    assert hdd.seek.theta == 1150
    # ZBR refinement figures ride on the same preset.
    assert spec.zoning is not None
    assert (spec.zoning.outer_sectors, spec.zoning.inner_sectors) == (504, 376)


def test_presets_share_capacity_for_uniform_striping():
    capacities = {spec.capacity_bytes for spec in DEVICE_PRESETS.values()}
    assert capacities == {18_000_000_000}


def test_unknown_preset_rejected():
    with pytest.raises(ConfigError):
        device_preset("quantum_bigfoot")


def test_preset_shape_validation():
    from repro.config import DeviceSpec, ZoningParams

    with pytest.raises(ConfigError):  # SSD kind with HDD params
        DeviceSpec(
            name="x", kind=DeviceKind.SSD, hdd=DiskParams()
        ).validate()
    with pytest.raises(ConfigError):  # zoning on a flash device
        DeviceSpec(
            name="x", kind=DeviceKind.SSD, ssd=SsdParams(), zoning=ZoningParams()
        ).validate()


# -- registry -----------------------------------------------------------


def test_registry_builds_per_kind():
    hdd = make_device_model(ULTRASTAR_36Z15, BLOCK, deterministic_rotation=True)
    ssd = make_device_model(GENERIC_SSD, BLOCK)
    assert isinstance(hdd, HddDeviceModel) and hdd.kind is DeviceKind.HDD
    assert isinstance(ssd, FlashServiceModel) and ssd.kind is DeviceKind.SSD
    assert hdd.channels == 1
    assert ssd.channels == GENERIC_SSD.ssd.channels


def test_registry_rejects_duplicate_registration():
    assert set(DEVICE_MODELS) == {DeviceKind.HDD, DeviceKind.SSD}
    with pytest.raises(ConfigError):
        register_device(DeviceKind.SSD)(lambda *a, **kw: None)
    assert set(DEVICE_MODELS) == {DeviceKind.HDD, DeviceKind.SSD}


# -- HDD differential ---------------------------------------------------


def test_hdd_device_model_matches_service_time_model_draw_for_draw():
    """Same seed → identical phase breakdowns, operation after
    operation. This equivalence is what keeps the six committed
    goldens byte-identical across the device-layer refactor."""
    disk = DiskParams(capacity_bytes=64 * MB)
    device = HddDeviceModel(disk, BLOCK, rng=np.random.default_rng(7))
    legacy = ServiceTimeModel(disk, BLOCK, rng=np.random.default_rng(7))
    rng = np.random.default_rng(99)
    head = 0
    for _ in range(200):
        start = int(rng.integers(0, legacy.geometry.n_blocks - 8))
        n = int(rng.integers(1, 9))
        a = legacy.breakdown(head, start, n)
        b = device.breakdown(head, start, n, is_write=bool(rng.integers(2)))
        assert a == b  # exact tuple equality, not approx
        head = start + n - 1
    assert device.expected_service_time(8) == legacy.expected_service_time(8)


def test_hdd_device_model_is_the_service_time_model():
    """Subclassing (not delegation) is deliberate: the HDD path runs
    literally the legacy code, so RNG draw order cannot drift."""
    assert issubclass(HddDeviceModel, ServiceTimeModel)


# -- flash model --------------------------------------------------------


@pytest.fixture
def flash():
    return FlashServiceModel(GENERIC_SSD.ssd, BLOCK)


def test_flash_latency_is_flat_across_addresses(flash):
    far = flash.geometry.n_blocks - 9
    assert flash.breakdown(0, 8, 8) == flash.breakdown(0, far, 8)
    assert flash.breakdown(0, 8, 8) == flash.breakdown(far, 8, 8)


def test_flash_phases_are_seekless(flash):
    b = flash.breakdown(0, 1000, 8)
    assert b.seek_ms == 0.0 and b.rotation_ms == 0.0
    ssd = GENERIC_SSD.ssd
    assert b.overhead_ms == pytest.approx(
        ssd.command_overhead_ms + ssd.read_latency_ms
    )
    assert b.transfer_ms == pytest.approx(
        8 * BLOCK / ssd.transfer_rate_bytes_ms
    )
    assert b.total_ms == pytest.approx(
        b.overhead_ms + b.transfer_ms
    )


def test_flash_write_asymmetry(flash):
    read = flash.breakdown(0, 0, 4, is_write=False)
    write = flash.breakdown(0, 0, 4, is_write=True)
    ssd = GENERIC_SSD.ssd
    assert write.total_ms - read.total_ms == pytest.approx(
        ssd.write_latency_ms - ssd.read_latency_ms
    )
    assert write.transfer_ms == read.transfer_ms


def test_flash_expected_service_time_matches_read(flash):
    assert flash.expected_service_time(8) == pytest.approx(
        flash.breakdown(0, 0, 8).total_ms
    )
    # seek_distance is part of the shared signature but meaningless here
    assert flash.expected_service_time(8, seek_distance=500) == pytest.approx(
        flash.expected_service_time(8)
    )


def test_nvme_preset_is_faster_than_sata(flash):
    nvme = FlashServiceModel(GENERIC_NVME.ssd, BLOCK)
    assert nvme.breakdown(0, 0, 8).total_ms < flash.breakdown(0, 0, 8).total_ms
    assert nvme.channels > flash.channels


# -- flat geometry ------------------------------------------------------


def test_flat_geometry_collapses_cylinders(flash):
    g = flash.geometry
    assert isinstance(g, FlatGeometry)
    assert g.n_cylinders == 1
    assert g.cylinder_of(0) == 0
    assert g.cylinder_of(g.n_blocks - 1) == 0
    assert g.seek_distance(0, g.n_blocks - 1) == 0
    assert g.seek_distance(g.n_blocks - 1, 0) == 0  # trivially symmetric


def test_flat_geometry_bounds_and_clamp(flash):
    g = flash.geometry
    assert g.n_blocks == GENERIC_SSD.ssd.capacity_bytes // BLOCK
    with pytest.raises(AddressError):
        g.check_block(g.n_blocks)
    with pytest.raises(AddressError):
        g.check_block(-1)
    assert g.clamp_run(g.n_blocks - 3, 10) == 3
    assert g.clamp_run(0, 10) == 10


# -- channel concurrency ------------------------------------------------


def test_ssd_drive_overlaps_operations_up_to_channels():
    """An SSD slot services up to ``channels`` media ops concurrently;
    a spinning disk stays a serial server."""
    from repro.disk.drive import DiskDrive
    from repro.errors import SimulationError
    from repro.sim.engine import Simulator

    channels = GENERIC_SSD.ssd.channels
    sim = Simulator()
    drive = DiskDrive(0, sim, FlashServiceModel(GENERIC_SSD.ssd, BLOCK))
    done = []
    for i in range(channels):
        assert not drive.busy  # a free channel remains
        drive.execute(i * 64, 8, False, lambda *a, i=i: done.append(i))
    assert drive.busy and drive.in_flight == channels
    with pytest.raises(SimulationError):
        drive.execute(channels * 64, 8, False, lambda *a: None)
    sim.run()
    assert done == list(range(channels))
    assert drive.max_concurrent == channels
    assert drive.in_flight == 0 and not drive.busy

    # The spinning-disk preset stays a strict serial server.
    sim2 = Simulator()
    hdd = DiskDrive(
        1,
        sim2,
        make_device_model(
            device_preset("ultrastar_36z15"), BLOCK, deterministic_rotation=True
        ),
    )
    hdd.execute(0, 8, False, lambda *a: None)
    assert hdd.busy and hdd.n_channels == 1
    sim2.run()
    assert hdd.max_concurrent == 1


def test_hybrid_config_reports_device_kinds():
    config = ultrastar_36z15_config().with_(
        devices=("ultrastar_36z15",) * 4 + ("generic_ssd",) * 4
    )
    config.validate()
    assert config.device_kinds == (DeviceKind.HDD,) * 4 + (DeviceKind.SSD,) * 4
    assert config.device_spec(0).kind is DeviceKind.HDD
    assert config.device_spec(7).kind is DeviceKind.SSD


def test_device_list_length_must_match_array():
    with pytest.raises(ConfigError):
        ultrastar_36z15_config().with_(devices=("generic_ssd",) * 3)
