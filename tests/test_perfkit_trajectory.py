"""Trajectory store round-trips and the noise-aware regression gate."""

import json

import pytest

from repro.errors import ReproError
from repro.perfkit.trajectory import (
    GatePolicy,
    MetricPoint,
    TrajectoryRun,
    TrajectoryStore,
    gate,
    run_from_bench_hotpath,
    run_from_bench_sim,
)


def sim_data(rps=20_000.0, calibration=0.1):
    return {
        "calibration_s": calibration,
        "scenarios": {
            "closed_synthetic": {"records": 10_000, "records_per_s": rps},
            "open_synthetic": {"records": 10_000, "records_per_s": rps * 1.1},
        },
    }


def make_run(value, name="metric", higher_is_better=True, bench="sim"):
    return TrajectoryRun(
        bench=bench,
        metrics={
            name: MetricPoint(
                value=value, unit="x", higher_is_better=higher_is_better
            )
        },
    )


# -- adapters ----------------------------------------------------------


def test_sim_adapter_normalizes_by_calibration():
    run = run_from_bench_sim(sim_data(), label="fresh")
    assert run.bench == "sim" and run.label == "fresh"
    point = run.metrics["closed_synthetic"]
    # 20k rec/s on a machine whose calibration round takes 0.1s:
    # 2000 records per calibration unit — the machine-portable value.
    assert point.value == 2_000.0
    assert point.unit == "rec/cal" and point.higher_is_better
    # a machine twice as fast runs both the bench and the calibration
    # twice as fast: the stored metric is unchanged
    doubled = run_from_bench_sim(sim_data(rps=40_000.0, calibration=0.05))
    assert doubled.metrics["closed_synthetic"].value == point.value


def test_sim_adapter_rejects_empty():
    with pytest.raises(ReproError):
        run_from_bench_sim({"scenarios": {}, "calibration_s": 0.1})
    with pytest.raises(ReproError):
        run_from_bench_sim({})


def test_adapters_reject_missing_calibration():
    """Absolute wall-clock values are not machine-portable: a dump
    without the in-process calibration must fail loudly, not gate
    dev-box seconds against CI-runner seconds."""
    data = sim_data()
    del data["calibration_s"]
    with pytest.raises(ReproError, match="calibration_s"):
        run_from_bench_sim(data)
    with pytest.raises(ReproError, match="calibration_s"):
        run_from_bench_hotpath({"replay_loop_s": 0.017})
    with pytest.raises(ReproError, match="calibration_s"):
        run_from_bench_hotpath({"replay_loop_s": 0.017, "calibration_s": 0})


def test_hotpath_adapter_keeps_numeric_metrics_lower_is_better():
    run = run_from_bench_hotpath(
        {"replay_loop_s": 0.017, "calibration_s": 0.1, "note": "ignored"},
        label="a",
    )
    # calibration_s is the yardstick, not a gated metric
    assert set(run.metrics) == {"replay_loop_s"}
    point = run.metrics["replay_loop_s"]
    assert not point.higher_is_better
    assert point.value == pytest.approx(0.17)
    assert point.unit == "cal"
    with pytest.raises(ReproError):
        run_from_bench_hotpath({"note": "no numbers", "calibration_s": 0.1})


# -- store -------------------------------------------------------------


def test_store_append_save_load_roundtrip(tmp_path):
    path = tmp_path / "traj.json"
    store = TrajectoryStore(path)
    store.append(run_from_bench_sim(sim_data(), label="one"))
    store.append(run_from_bench_sim(sim_data(21_000.0), label="two"))
    store.save()

    loaded = TrajectoryStore(path)
    runs = loaded.runs("sim")
    assert [(r.run_id, r.label) for r in runs] == [(1, "one"), (2, "two")]
    assert loaded.history("sim", "closed_synthetic") == [2_000.0, 2_100.0]
    assert loaded.benches == ["sim"]
    assert "closed_synthetic" in loaded.metric_names("sim")
    # round-trip preserves point fields exactly
    assert runs[0].metrics["closed_synthetic"] == MetricPoint(
        2_000.0, "rec/cal", True
    )


def test_store_rejects_unknown_schema_version(tmp_path):
    path = tmp_path / "traj.json"
    path.write_text(json.dumps({"version": 99, "benches": {}}))
    with pytest.raises(ReproError):
        TrajectoryStore(path)


def test_store_rejects_corrupt_json(tmp_path):
    path = tmp_path / "traj.json"
    path.write_text("{not json")
    with pytest.raises(ReproError):
        TrajectoryStore(path)


def test_missing_store_is_empty(tmp_path):
    store = TrajectoryStore(tmp_path / "absent.json")
    assert store.benches == []
    assert store.runs("sim") == []


# -- gate --------------------------------------------------------------


def test_first_run_seeds_without_failing():
    report = gate(make_run(100.0), history=[])
    assert report.passed
    assert report.verdicts[0].note == "no history (seeding)"
    assert report.verdicts[0].baseline is None


def test_identical_rerun_passes():
    """The noise-envelope promise: re-running an identical build never
    trips the gate."""
    history = [make_run(100.0), make_run(101.0), make_run(99.0)]
    report = gate(make_run(100.0), history)
    assert report.passed, report.to_text()


def test_injected_regression_fails():
    history = [make_run(100.0), make_run(101.0), make_run(99.0)]
    report = gate(make_run(50.0), history)  # 2x slower throughput
    assert not report.passed
    assert report.regressions[0].metric == "metric"
    assert "REGRESSED" in report.to_text()
    assert "FAIL" in report.to_text()


def test_improvement_never_fails():
    history = [make_run(100.0)]
    report = gate(make_run(300.0), history)
    assert report.passed


def test_direction_awareness_for_lower_is_better():
    history = [make_run(0.10, higher_is_better=False)]
    slower = gate(make_run(0.25, higher_is_better=False), history)
    assert not slower.passed  # seconds went up: regression
    faster = gate(make_run(0.05, higher_is_better=False), history)
    assert faster.passed


def test_noisy_history_widens_envelope():
    # spread (140-60)/100 = 0.8; envelope = min(max_env, 3*0.8) = cap
    noisy = [make_run(60.0), make_run(100.0), make_run(140.0)]
    policy = GatePolicy(rel_tolerance=0.10, noise_factor=3.0, max_envelope=0.60)
    report = gate(make_run(45.0), noisy, policy)
    assert report.verdicts[0].envelope == pytest.approx(0.60)
    assert report.passed  # -55% within the widened envelope
    # the same drop against a tight history fails
    tight = [make_run(100.0), make_run(100.0), make_run(100.0)]
    assert not gate(make_run(45.0), tight, policy).passed


def test_zero_baseline_regresses_lower_is_better():
    """A history rounded to all zeros must not silently disable the
    gate: nonzero cost on a lower-is-better metric is a regression."""
    history = [make_run(0.0, higher_is_better=False)]
    report = gate(make_run(0.05, higher_is_better=False), history)
    assert not report.passed
    verdict = report.regressions[0]
    assert verdict.note == "zero baseline"
    assert verdict.change is None
    assert "zero baseline" in report.to_text()


def test_zero_baseline_improvement_passes_with_note():
    history = [make_run(0.0, higher_is_better=True)]
    report = gate(make_run(5.0, higher_is_better=True), history)
    assert report.passed
    assert report.verdicts[0].note == "zero baseline"


def test_zero_baseline_zero_value_passes_quietly():
    history = [make_run(0.0, higher_is_better=False)]
    report = gate(make_run(0.0, higher_is_better=False), history)
    assert report.passed
    assert report.verdicts[0].note == ""


def test_baseline_is_median_of_recent_window():
    history = [make_run(v) for v in (10.0, 100.0, 102.0, 98.0)]
    policy = GatePolicy(window=3)  # the old outlier falls outside
    report = gate(make_run(100.0), history, policy)
    assert report.verdicts[0].baseline == pytest.approx(100.0)


def test_new_metric_in_new_run_seeds():
    history = [make_run(100.0, name="old")]
    new = TrajectoryRun(
        bench="sim",
        metrics={
            "old": MetricPoint(100.0, "x", True),
            "brand_new": MetricPoint(5.0, "x", True),
        },
    )
    report = gate(new, history)
    assert report.passed
    notes = {v.metric: v.note for v in report.verdicts}
    assert notes["brand_new"] == "no history (seeding)"
    assert notes["old"] == ""


def test_calibration_workload_is_deterministic_and_timable():
    from repro.perfkit.calibrate import calibration_round, calibration_seconds

    # the yardstick must never drift: same checksum forever
    assert calibration_round() == calibration_round()
    assert calibration_round(1_000) == calibration_round(1_000)
    assert calibration_seconds(repeats=1) > 0


def test_committed_trajectory_gates_the_committed_benches():
    """The repo's own baselines pass their own gate (self-consistency)."""
    store = TrajectoryStore("benchmarks/BENCH_trajectory.json")
    assert set(store.benches) == {"sim", "hotpath"}
    for bench in store.benches:
        runs = store.runs(bench)
        assert len(runs) >= 2, "need history for a noise envelope"
        report = gate(runs[-1], runs[:-1])
        assert report.passed, report.to_text()
