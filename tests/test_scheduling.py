"""Queue disciplines: FCFS, LOOK, SSTF, C-SCAN."""

import pytest
from hypothesis import given, strategies as st

from repro.config import SchedulerKind
from repro.errors import ConfigError
from repro.scheduling.cscan import CScanScheduler
from repro.scheduling.factory import make_scheduler
from repro.scheduling.fcfs import FCFSScheduler
from repro.scheduling.look import LookScheduler
from repro.scheduling.sstf import SSTFScheduler

ALL = (FCFSScheduler, LookScheduler, SSTFScheduler, CScanScheduler)


def drain(scheduler, head=0):
    order = []
    while scheduler:
        req = scheduler.pop(head)
        order.append(req.cylinder)
        head = req.cylinder
    return order


class TestFactory:
    def test_all_kinds_constructible(self):
        for kind in SchedulerKind:
            assert make_scheduler(kind).name == kind.value

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            make_scheduler("elevator-of-doom")


class TestFCFS:
    def test_arrival_order(self):
        sched = FCFSScheduler()
        for cyl in (30, 10, 20):
            sched.push(cyl, None, 0.0)
        assert drain(sched) == [30, 10, 20]


class TestLook:
    def test_sweeps_up_then_down(self):
        sched = LookScheduler()
        for cyl in (50, 10, 70, 30):
            sched.push(cyl, None, 0.0)
        # head at 40 sweeping up: 50, 70, then reverse: 30, 10
        assert drain(sched, head=40) == [50, 70, 30, 10]

    def test_reverses_when_nothing_ahead(self):
        sched = LookScheduler()
        sched.push(10, None, 0.0)
        sched.push(5, None, 0.0)
        assert drain(sched, head=100) == [10, 5]

    def test_same_cylinder_fifo(self):
        sched = LookScheduler()
        a = sched.push(10, "a", 0.0)
        b = sched.push(10, "b", 0.0)
        assert sched.pop(0) is a
        assert sched.pop(10) is b

    def test_exact_head_position_served_in_down_sweep(self):
        sched = LookScheduler()
        sched.push(100, None, 0.0)
        assert drain(sched, head=200) == [100]

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60))
    def test_all_requests_eventually_served(self, cylinders):
        sched = LookScheduler()
        for cyl in cylinders:
            sched.push(cyl, None, 0.0)
        assert sorted(drain(sched, head=500)) == sorted(cylinders)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=60))
    def test_seek_total_no_worse_than_3x_span(self, cylinders):
        """A LOOK drain travels at most ~2 sweeps over the span."""
        sched = LookScheduler()
        for cyl in cylinders:
            sched.push(cyl, None, 0.0)
        head = 500
        travel = 0
        while sched:
            req = sched.pop(head)
            travel += abs(req.cylinder - head)
            head = req.cylinder
        span = max(cylinders + [500]) - min(cylinders + [500])
        assert travel <= 3 * span + 1


class TestSSTF:
    def test_nearest_first(self):
        sched = SSTFScheduler()
        for cyl in (100, 45, 60):
            sched.push(cyl, None, 0.0)
        assert drain(sched, head=50) == [45, 60, 100]

    def test_tie_prefers_either_but_serves_all(self):
        sched = SSTFScheduler()
        sched.push(40, None, 0.0)
        sched.push(60, None, 0.0)
        assert sorted(drain(sched, head=50)) == [40, 60]


class TestCScan:
    def test_wraps_to_lowest(self):
        sched = CScanScheduler()
        for cyl in (10, 90, 50):
            sched.push(cyl, None, 0.0)
        # head at 60: serve 90, wrap to 10, then 50
        assert drain(sched, head=60) == [90, 10, 50]

    def test_head_above_highest_wraps_immediately(self):
        sched = CScanScheduler()
        for cyl in (10, 30, 50):
            sched.push(cyl, None, 0.0)
        # nothing at or above the head: the very first pop must jump
        # to the lowest pending cylinder, then sweep upward
        assert sched.peek(60).cylinder == 10
        assert drain(sched, head=60) == [10, 30, 50]

    def test_head_exactly_at_highest_serves_it_first(self):
        sched = CScanScheduler()
        for cyl in (10, 50):
            sched.push(cyl, None, 0.0)
        assert drain(sched, head=50) == [50, 10]

    def test_pop_empties_bucket_then_removes_cylinder(self):
        sched = CScanScheduler()
        first = sched.push(20, "a", 0.0)
        second = sched.push(20, "b", 0.0)
        sched.push(40, "c", 0.0)
        # same-cylinder requests drain FIFO before the cylinder goes
        assert sched.pop(0) is first
        assert 20 in sched._buckets
        assert sched.pop(0) is second
        # bucket emptied: cylinder fully retired from the sweep order
        assert 20 not in sched._buckets
        assert sched._cylinders == [40]
        assert sched.pop(0).cylinder == 40
        assert len(sched) == 0
        assert sched.peek(0) is None


@pytest.mark.parametrize("cls", ALL)
def test_empty_pop_returns_none(cls):
    assert cls().pop(0) is None


@pytest.mark.parametrize("cls", ALL)
def test_len_and_counters(cls):
    sched = cls()
    for cyl in (5, 6, 7):
        sched.push(cyl, None, 0.0)
    assert len(sched) == 3
    assert sched.enqueued_total == 3
    assert sched.max_queue_len == 3
    sched.pop(0)
    assert len(sched) == 2


@pytest.mark.parametrize("cls", ALL)
@given(data=st.data())
def test_conservation_property(cls, data):
    """Everything pushed is popped exactly once, regardless of order."""
    cylinders = data.draw(
        st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=40)
    )
    sched = cls()
    payloads = []
    for i, cyl in enumerate(cylinders):
        payloads.append(i)
        sched.push(cyl, i, 0.0)
    popped = []
    head = 0
    while sched:
        req = sched.pop(head)
        popped.append(req.payload)
        head = req.cylinder
    assert sorted(popped) == payloads
