"""Wire protocol: framing, parsing, request/response validation."""

import asyncio
import json
import struct

import pytest

from repro.service.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    Response,
    STATUS_BUSY,
    STATUS_OK,
    decode_frame,
    encode_frame,
    read_frame,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "READ", "tenant": "a", "id": 7, "start": 0, "blocks": 8}
        decoded, rest = decode_frame(encode_frame(payload))
        assert decoded == payload
        assert rest == b""

    def test_partial_header_incomplete(self):
        assert decode_frame(b"\x00\x00") == (None, b"\x00\x00")

    def test_partial_body_incomplete(self):
        frame = encode_frame({"op": "STATS", "id": 1})
        truncated = frame[:-2]
        assert decode_frame(truncated) == (None, truncated)

    def test_two_frames_split_correctly(self):
        a = encode_frame({"id": 1})
        b = encode_frame({"id": 2})
        first, rest = decode_frame(a + b)
        assert first == {"id": 1}
        second, rest = decode_frame(rest)
        assert second == {"id": 2}
        assert rest == b""

    def test_oversize_header_refused_before_allocation(self):
        huge = HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(huge)

    def test_oversize_encode_refused(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"x": "y" * MAX_FRAME_BYTES})

    def test_non_object_json_refused(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(struct.pack("!I", len(body)) + body)

    def test_invalid_json_refused(self):
        body = b"{nope"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(struct.pack("!I", len(body)) + body)


class TestStreamReading:
    @staticmethod
    def _read(data: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_reads_one_frame(self):
        assert self._read(encode_frame({"id": 3})) == {"id": 3}

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None

    def test_mid_frame_eof_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._read(encode_frame({"id": 3})[:-1])

    def test_oversize_length_raises(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            self._read(HEADER.pack(MAX_FRAME_BYTES + 1))


class TestRequestValidation:
    def test_round_trip(self):
        request = Request("WRITE", "alice", 9, 128, 16)
        assert Request.from_payload(request.to_payload()) == request

    def test_stats_omits_range(self):
        request = Request("STATS", "alice", 2)
        payload = request.to_payload()
        assert "start" not in payload and "blocks" not in payload
        assert Request.from_payload(payload) == request

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            Request.from_payload({"op": "TRIM", "id": 1})

    def test_tenant_defaults(self):
        request = Request.from_payload(
            {"op": "READ", "id": 1, "start": 0, "blocks": 1}
        )
        assert request.tenant == "default"

    def test_empty_tenant_refused(self):
        with pytest.raises(ProtocolError, match="tenant"):
            Request.from_payload(
                {"op": "READ", "tenant": "", "id": 1, "start": 0, "blocks": 1}
            )

    def test_bad_id_refused(self):
        with pytest.raises(ProtocolError, match="id"):
            Request.from_payload(
                {"op": "READ", "id": "seven", "start": 0, "blocks": 1}
            )

    def test_negative_start_refused(self):
        with pytest.raises(ProtocolError, match="start"):
            Request.from_payload(
                {"op": "READ", "id": 1, "start": -4, "blocks": 1}
            )

    def test_zero_blocks_refused(self):
        with pytest.raises(ProtocolError, match="blocks"):
            Request.from_payload(
                {"op": "WRITE", "id": 1, "start": 0, "blocks": 0}
            )

    def test_is_io_classification(self):
        assert Request("READ", "a", 1, 0, 1).is_io
        assert Request("WRITE", "a", 1, 0, 1).is_io
        assert not Request("PIN", "a", 1, 0, 1).is_io
        assert not Request("STATS", "a", 1).is_io


class TestResponseValidation:
    def test_round_trip_ok(self):
        response = Response(4, STATUS_OK, latency_ms=2.5, queue_ms=0.5)
        back = Response.from_payload(response.to_payload())
        assert back == response
        assert back.ok

    def test_busy_carries_no_latency(self):
        payload = Response(4, STATUS_BUSY).to_payload()
        assert "latency_ms" not in payload
        assert not Response.from_payload(payload).ok

    def test_unknown_status_refused(self):
        with pytest.raises(ProtocolError, match="unknown status"):
            Response.from_payload({"id": 1, "status": "MAYBE"})

    def test_error_and_data_round_trip(self):
        response = Response(1, STATUS_OK, data={"pinned": 8})
        assert Response.from_payload(response.to_payload()).data == {"pinned": 8}
