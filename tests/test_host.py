"""System assembly and closed-loop trace replay."""

import pytest

from repro.config import (
    CacheOrganization,
    ReadAheadKind,
)
from repro.errors import ConfigError, WorkloadError
from repro.fs.bitmap_builder import build_bitmaps
from repro.fs.layout import FileSystemLayout
from repro.host.streams import ReplayDriver
from repro.host.system import System
from repro.units import KB
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


def make_trace(records, n_streams=4, coalesce=1.0):
    return Trace(
        records, TraceMeta(n_streams=n_streams, coalesce_prob=coalesce)
    )


class TestSystem:
    def test_segment_organization_by_default(self, small_config):
        from repro.cache.segment import SegmentCache

        system = System(small_config)
        assert isinstance(system.controllers[0].cache, SegmentCache)

    def test_block_organization(self, small_config):
        import dataclasses

        from repro.cache.block import BlockCache

        config = small_config.with_(
            cache=dataclasses.replace(
                small_config.cache, organization=CacheOrganization.BLOCK
            )
        )
        system = System(config)
        cache = system.controllers[0].cache
        assert isinstance(cache, BlockCache)
        assert cache.capacity_blocks == config.effective_cache_blocks

    def test_for_requires_bitmaps(self, small_config):
        config = small_config.with_(readahead=ReadAheadKind.FILE_ORIENTED)
        with pytest.raises(ConfigError):
            System(config)

    def test_for_bitmap_count_checked(self, small_config):
        from repro.readahead.bitmap import SequentialityBitmap

        config = small_config.with_(readahead=ReadAheadKind.FILE_ORIENTED)
        with pytest.raises(ConfigError):
            System(config, bitmaps=[SequentialityBitmap(8)])

    def test_hdc_region_sized_from_config(self, small_config):
        config = small_config.with_(hdc_bytes=32 * KB)
        system = System(config)
        assert system.controllers[0].pinned.capacity_blocks == 8

    def test_identical_seeds_identical_rotation_streams(self, small_config):
        a = System(small_config)
        b = System(small_config)
        ra = a.controllers[0].drive.service_model.rotation_model.latency()
        rb = b.controllers[0].drive.service_model.rotation_model.latency()
        assert ra == rb


class TestReplayDriver:
    def test_empty_trace_rejected(self, small_config):
        system = System(small_config)
        with pytest.raises(WorkloadError):
            ReplayDriver(system, make_trace([]))

    def test_zero_streams_rejected(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(0, 1)])])
        with pytest.raises(WorkloadError):
            ReplayDriver(system, trace, n_streams=0)

    def test_replays_every_record(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(i * 8, 2)]) for i in range(20)])
        driver = ReplayDriver(system, trace)
        elapsed = driver.run()
        assert driver.records_completed == 20
        assert elapsed > 0
        assert driver.finish_time == system.sim.now

    def test_second_run_raises_instead_of_hanging(self, small_config):
        """Regression: a completed driver's second ``run()`` starts no
        stream (the source is exhausted), so nothing ever calls
        ``sim.stop()`` — with periodic background events (HDC's 30-s
        flush timer) the engine then spun forever. Fail fast instead."""
        system = System(small_config)
        trace = make_trace([DiskAccess([(i * 8, 2)]) for i in range(4)])
        driver = ReplayDriver(system, trace)
        driver.run()
        with pytest.raises(WorkloadError, match="already ran"):
            driver.run()

    def test_more_streams_than_records_is_fine(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(0, 1)])], n_streams=64)
        assert ReplayDriver(system, trace).run() > 0

    def test_writes_replayed(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(0, 4)], is_write=True)])
        ReplayDriver(system, trace).run()
        stats = system.array.controller_stats()
        assert stats.write_commands >= 1
        assert stats.media_blocks_written == 4

    def test_concurrent_identical_reads_merge(self, small_config):
        system = System(small_config)
        # many streams ask for the same record back to back
        trace = make_trace([DiskAccess([(0, 2)])] * 8, n_streams=8)
        driver = ReplayDriver(system, trace)
        driver.run()
        assert driver.records_completed == 8
        assert driver.reads_merged > 0
        # only one media read happened for the whole burst
        assert system.array.controller_stats().media_reads == 1

    def test_writes_never_merge(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(0, 1)], is_write=True)] * 4, n_streams=4)
        driver = ReplayDriver(system, trace)
        driver.run()
        assert driver.reads_merged == 0
        assert system.array.controller_stats().media_blocks_written == 4

    def test_coalescer_splits_commands(self, small_config):
        system = System(small_config)
        records = [DiskAccess([(i * 16, 4)]) for i in range(40)]
        trace = make_trace(records, coalesce=0.0)
        driver = ReplayDriver(system, trace)
        driver.run()
        assert driver.commands_issued == 160  # every block its own command

    def test_fully_coalesced_one_command_per_disk_run(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(0, 4)])], coalesce=1.0)
        driver = ReplayDriver(system, trace)
        driver.run()
        assert driver.commands_issued == 1

    def test_on_record_complete_hook(self, small_config):
        system = System(small_config)
        seen = []
        trace = make_trace([DiskAccess([(i * 4, 1)]) for i in range(5)])
        ReplayDriver(
            system, trace, on_record_complete=lambda r: seen.append(r)
        ).run()
        assert len(seen) == 5

    def test_stream_count_from_meta(self, small_config):
        system = System(small_config)
        trace = make_trace([DiskAccess([(0, 1)])], n_streams=3)
        driver = ReplayDriver(system, trace)
        assert driver.n_streams == 3


class TestReplayWithFOR:
    def test_for_reads_fewer_blocks_than_blind(self, small_config):
        layout = FileSystemLayout.build([2] * 200, 4000)
        records = [DiskAccess(layout.file_runs(i)) for i in range(200)]
        trace = make_trace(records, n_streams=8)

        def run(config, bitmaps=None):
            system = System(config, bitmaps=bitmaps)
            ReplayDriver(system, trace).run()
            return system.array.controller_stats()

        import dataclasses

        blind_stats = run(small_config)
        for_config = small_config.with_(
            readahead=ReadAheadKind.FILE_ORIENTED,
            cache=dataclasses.replace(
                small_config.cache, organization=CacheOrganization.BLOCK
            ),
        )
        striping = System(small_config).striping
        bitmaps = build_bitmaps(layout, striping)
        for_stats = run(for_config, bitmaps)
        assert for_stats.media_blocks_read < blind_stats.media_blocks_read / 2
