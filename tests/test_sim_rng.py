"""Deterministic named random streams."""

from repro.sim.rng import RandomStreams


def test_same_seed_and_name_reproduce():
    a = RandomStreams(7).stream("disk0.rotation").random(10)
    b = RandomStreams(7).stream("disk0.rotation").random(10)
    assert (a == b).all()


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = streams.stream("a").random(10)
    b = streams.stream("b").random(10)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random(10)
    b = RandomStreams(2).stream("x").random(10)
    assert not (a == b).all()


def test_stream_is_cached_not_recreated():
    streams = RandomStreams(7)
    first = streams.stream("x")
    assert streams.stream("x") is first


def test_creation_order_does_not_matter():
    one = RandomStreams(3)
    _ = one.stream("a").random(5)
    a_then = one.stream("b").random(5)

    two = RandomStreams(3)
    b_only = two.stream("b").random(5)
    assert (a_then == b_only).all()


def test_fork_gives_different_family():
    base = RandomStreams(7)
    forked = base.fork(1)
    a = base.stream("x").random(5)
    b = forked.stream("x").random(5)
    assert not (a == b).all()
