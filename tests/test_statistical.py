"""Distributional correctness of the stochastic components (scipy).

These go beyond spot checks: chi-square and Kolmogorov-Smirnov tests
confirm the samplers actually produce the distributions the paper's
methodology assumes (Bradford-Zipf popularity, uniform rotational
latency, geometric fragmentation gaps, Bernoulli coalescing).
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.config import DiskParams
from repro.fs.allocator import SequentialAllocator
from repro.mechanics.rotation import RotationModel
from repro.oscache.coalesce import Coalescer
from repro.workloads.zipf import ZipfSampler

ALPHA_LEVEL = 1e-3  # reject only on overwhelming evidence


class TestZipfDistribution:
    @pytest.mark.parametrize("alpha", [0.0, 0.4, 1.0])
    def test_chi_square_against_theoretical_pmf(self, alpha):
        n, draws = 50, 200_000
        sampler = ZipfSampler(n, alpha, rng=np.random.default_rng(1))
        observed = np.bincount(sampler.sample(draws), minlength=n)
        weights = np.arange(1, n + 1, dtype=float) ** (-alpha)
        expected = draws * weights / weights.sum()
        _stat, p = sps.chisquare(observed, expected)
        assert p > ALPHA_LEVEL

    def test_rank_one_frequency_matches_probability(self):
        sampler = ZipfSampler(1000, 0.8, rng=np.random.default_rng(2))
        draws = sampler.sample(100_000)
        empirical = (draws == 0).mean()
        assert empirical == pytest.approx(sampler.probability(0), rel=0.05)


class TestRotationDistribution:
    def test_ks_against_uniform(self):
        disk = DiskParams()
        model = RotationModel(disk, rng=np.random.default_rng(3))
        samples = np.array([model.latency() for _ in range(20_000)])
        _stat, p = sps.kstest(samples, "uniform", args=(0.0, disk.rotation_ms))
        assert p > ALPHA_LEVEL


class TestCoalescingBernoulli:
    def test_boundary_decisions_are_bernoulli(self):
        prob = 0.87
        co = Coalescer(prob, rng=np.random.default_rng(4))
        merged = 0
        total = 0
        for _ in range(2_000):
            pieces = co.split(0, 33)  # 32 boundaries each
            merged += 33 - len(pieces)
            total += 32
        # normal approximation confidence interval
        se = (prob * (1 - prob) / total) ** 0.5
        assert abs(merged / total - prob) < 5 * se

    def test_piece_lengths_geometric(self):
        """Run lengths of merged boundaries follow a geometric law."""
        co = Coalescer(0.5, rng=np.random.default_rng(5))
        lengths = []
        for _ in range(3_000):
            lengths.extend(n for _s, n in co.split(0, 64))
        lengths = np.array(lengths)
        # interior pieces ~ Geometric(0.5): mean 2
        assert lengths.mean() == pytest.approx(2.0, rel=0.1)


class TestFragmentationGaps:
    def test_break_rate_matches_probability(self):
        frag = 0.15
        alloc = SequentialAllocator(
            10_000_000, frag_prob=frag, rng=np.random.default_rng(6)
        )
        breaks = 0
        boundaries = 0
        for _ in range(800):
            extents = alloc.allocate(32)
            breaks += len(extents) - 1
            boundaries += 31
        se = (frag * (1 - frag) / boundaries) ** 0.5
        assert abs(breaks / boundaries - frag) < 5 * se

    def test_gap_sizes_have_configured_mean(self):
        mean_gap = 16.0
        alloc = SequentialAllocator(
            50_000_000,
            frag_prob=1.0,
            rng=np.random.default_rng(7),
            mean_gap_blocks=mean_gap,
        )
        gaps = []
        for _ in range(300):
            extents = alloc.allocate(16)
            for a, b in zip(extents, extents[1:]):
                gaps.append(b.start - a.end)
        # gap = 1 + Geometric(1/mean): mean ~ 1 + mean_gap
        assert np.mean(gaps) == pytest.approx(1 + mean_gap, rel=0.15)


class TestSeededIndependence:
    def test_rotation_streams_uncorrelated_across_disks(self):
        from repro.sim.rng import RandomStreams

        streams = RandomStreams(9)
        a = streams.stream("disk0.rotation").random(5_000)
        b = streams.stream("disk1.rotation").random(5_000)
        r, _p = sps.pearsonr(a, b)
        assert abs(r) < 0.05
