"""ASCII chart rendering."""

import math

import pytest

from repro.errors import ReproError
from repro.experiments.base import SeriesResult
from repro.metrics.ascii_chart import (
    SPARK_GLYPHS,
    render_chart,
    render_series_result,
    sparkline,
)


def test_renders_axis_and_legend():
    text = render_chart([1, 2, 3], {"a": [0.0, 0.5, 1.0]})
    assert "legend: o=a" in text
    assert "+-" in text
    assert "1" in text.splitlines()[-2]  # x labels row


def test_min_max_labels_present():
    text = render_chart([0, 1], {"a": [2.0, 8.0]})
    assert "8" in text
    assert "2" in text


def test_multiple_series_get_distinct_glyphs():
    text = render_chart([0, 1], {"a": [0, 1], "b": [1, 0]})
    assert "o=a" in text and "x=b" in text
    assert "o" in text and "x" in text


def test_monotone_series_slopes_down_the_grid():
    text = render_chart([0, 1, 2], {"a": [0.0, 0.5, 1.0]}, height=5, width=9)
    lines = [l for l in text.splitlines() if "|" in l]
    first_row = next(i for i, l in enumerate(lines) if "o" in l)
    last_row = max(i for i, l in enumerate(lines) if "o" in l)
    # max value plots on the top row, min on the bottom row
    assert first_row == 0
    assert last_row == len(lines) - 1


def test_nan_points_are_skipped():
    text = render_chart([0, 1, 2], {"a": [1.0, math.nan, 2.0]})
    assert text.count("o") >= 2  # legend glyph + at least drawn points


def test_constant_series_does_not_divide_by_zero():
    text = render_chart([0, 1], {"a": [5.0, 5.0]})
    assert "o" in text


def test_single_point():
    text = render_chart([42], {"a": [3.0]})
    assert "o" in text


def test_rejects_empty_and_degenerate():
    with pytest.raises(ReproError):
        render_chart([0], {})
    with pytest.raises(ReproError):
        render_chart([0], {"a": [math.nan]})
    with pytest.raises(ReproError):
        render_chart([0], {"a": [1.0]}, height=1)


def test_series_result_wrapper():
    result = SeriesResult("figZZ", "demo", "x", x_values=[1, 2])
    result.add_point("y", 1.0)
    result.add_point("y", 2.0)
    text = render_series_result(result)
    assert "figZZ" in text


# -- sparklines (report rendering must survive degenerate series) ------


def test_sparkline_monotone_ramps_through_glyphs():
    text = sparkline([0.0, 1.0, 2.0, 3.0])
    assert text[0] == SPARK_GLYPHS[0]
    assert text[-1] == SPARK_GLYPHS[-1]
    assert len(text) == 4


def test_sparkline_single_point_renders_mid_block():
    text = sparkline([7.5])
    assert len(text) == 1
    assert text in SPARK_GLYPHS


def test_sparkline_all_equal_values_no_division_by_zero():
    text = sparkline([5.0] * 6)
    assert len(text) == 6
    assert set(text) == {SPARK_GLYPHS[len(SPARK_GLYPHS) // 2]}


def test_sparkline_empty_and_all_nan():
    assert sparkline([]) == "(no data)"
    assert sparkline([math.nan, math.nan]) == "(no data)"


def test_sparkline_nan_points_become_placeholders():
    text = sparkline([1.0, math.nan, 2.0])
    assert text[1] == "·"
    assert text[0] in SPARK_GLYPHS and text[2] in SPARK_GLYPHS


def test_sparkline_negative_and_infinite_values():
    text = sparkline([-3.0, math.inf, -1.0])
    # inf is non-finite: placeholder, not a crash or a collapsed scale
    assert text[1] == "·"
    assert text[0] == SPARK_GLYPHS[0]
    assert text[2] == SPARK_GLYPHS[-1]
