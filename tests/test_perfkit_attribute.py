"""Cross-run component attribution over duck-typed run results."""

from types import SimpleNamespace

import pytest

from repro.errors import ReproError
from repro.obs.timeline import MEDIA_STATES
from repro.perfkit.attribute import (
    COMPONENTS,
    attribute_shift,
    phase_attribution_table,
    phase_media_breakdown,
    summarize_run,
)


def fake_result(
    records=100,
    mean_latency_ms=5.0,
    seek=100.0,
    rotation=150.0,
    transfer=200.0,
    overhead=50.0,
    block_hits=0,
    media_blocks=400,
    throughput_mb_s=10.0,
):
    """A minimal object shaped like RunResult, per-disk totals given."""
    states = {
        "overhead": overhead,
        "seek": seek,
        "rotation": rotation,
        "transfer": transfer,
    }
    states["busy"] = sum(states.values())
    return SimpleNamespace(
        records=records,
        io_time_ms=1000.0,
        mean_latency_ms=mean_latency_ms,
        throughput_mb_s=throughput_mb_s,
        time_in_state=[states],
        cache=SimpleNamespace(block_hits=block_hits),
        controller=SimpleNamespace(
            media_blocks_read=media_blocks, media_blocks_written=0
        ),
        cache_hit_rate=0.0,
        hdc_hit_rate=0.0,
    )


def test_summary_has_every_component():
    summary = summarize_run(fake_result(), "base")
    assert set(summary.components_ms) == set(COMPONENTS)


def test_media_components_are_per_record():
    summary = summarize_run(fake_result(records=100, seek=100.0), "base")
    assert summary.components_ms["seek"] == pytest.approx(1.0)
    assert summary.components_ms["rotation"] == pytest.approx(1.5)


def test_queue_is_signed_residual():
    # media work = 5.0 ms/record; latency 7.0 -> +2.0 queueing
    summary = summarize_run(fake_result(mean_latency_ms=7.0), "base")
    assert summary.components_ms["queue"] == pytest.approx(2.0)
    # latency 3.0 < media work: overlap across disks, negative residual
    overlapped = summarize_run(fake_result(mean_latency_ms=3.0), "base")
    assert overlapped.components_ms["queue"] == pytest.approx(-2.0)


def test_cache_credit_is_negative_ms():
    # 200 hits over 100 records at busy 500ms / 400 media blocks
    summary = summarize_run(fake_result(block_hits=200), "base")
    assert summary.components_ms["cache"] == pytest.approx(-2 * 500.0 / 400)
    no_hits = summarize_run(fake_result(block_hits=0), "base")
    assert no_hits.components_ms["cache"] == 0.0


def test_zero_record_run_does_not_divide_by_zero():
    summary = summarize_run(fake_result(records=0), "empty")
    assert summary.records == 1  # floored, components defined


def test_ranking_orders_by_absolute_delta():
    base = summarize_run(fake_result(), "base")
    new = summarize_run(
        fake_result(seek=300.0, mean_latency_ms=7.0), "new"
    )
    report = attribute_shift(base, new)
    assert report.ranking[0].component in ("seek", "queue")
    deltas = [abs(a.delta_ms) for a in report.ranking]
    assert deltas == sorted(deltas, reverse=True)
    assert sum(a.share for a in report.ranking) == pytest.approx(1.0)


def test_identical_runs_rank_deterministically():
    base = summarize_run(fake_result(), "a")
    new = summarize_run(fake_result(), "b")
    report = attribute_shift(base, new)
    # all-zero deltas: ties break in canonical component order
    assert [a.component for a in report.ranking] == list(COMPONENTS)
    assert all(a.share == 0.0 for a in report.ranking)
    assert report.latency_delta_ms == 0.0


def test_report_text_names_top_component():
    base = summarize_run(fake_result(), "Segm")
    new = summarize_run(fake_result(seek=400.0, mean_latency_ms=8.0), "FOR")
    text = attribute_shift(base, new).to_text()
    assert "FOR vs Segm" in text
    assert "slower" in text
    assert "seek" in text


# -- per-phase media binning ------------------------------------------


def span(ts, dur, name, disk=0, run=1):
    """One tracer media-state span event tuple."""
    return (run, "X", f"disk{disk}/state", name, ts, dur, 7, None)


def test_phase_media_breakdown_bins_by_start_time():
    events = [
        span(1.0, 2.0, "seek"),
        span(5.0, 1.0, "transfer"),
        span(12.0, 3.0, "rotation"),
        span(15.0, 1.0, "overhead", disk=3),
    ]
    bounds = [(0.0, 10.0), (10.0, 14.0)]
    out = phase_media_breakdown(events, bounds)
    assert len(out) == 2
    assert out[0]["seek"] == 2.0 and out[0]["transfer"] == 1.0
    assert out[1]["rotation"] == 3.0
    # span starting past the last bound folds into the final phase
    assert out[1]["overhead"] == 1.0


def test_phase_media_breakdown_ignores_non_media_events():
    events = [
        span(1.0, 2.0, "seek"),
        (1, "X", "host/requests", "request", 1.0, 5.0, 8, None),
        (1, "i", "disk0/state", "seek", 2.0, 0.0, 9, None),
    ]
    out = phase_media_breakdown(events, [(0.0, 10.0)])
    assert out[0]["seek"] == 2.0
    assert sum(out[0].values()) == 2.0


def test_phase_media_breakdown_filters_by_run():
    events = [span(1.0, 2.0, "seek", run=1), span(1.5, 4.0, "seek", run=2)]
    out = phase_media_breakdown(events, [(0.0, 10.0)], run=2)
    assert out[0]["seek"] == 4.0


def test_phase_media_breakdown_empty_bounds():
    assert phase_media_breakdown([span(1.0, 2.0, "seek")], []) == []


def test_phase_attribution_table_checks_lengths():
    phases = [SimpleNamespace(index=0, n_records=10)]
    with pytest.raises(ReproError):
        phase_attribution_table(phases, [], [{}])


def test_phase_attribution_table_renders_deltas():
    phases = [SimpleNamespace(index=0, n_records=10)]
    base = [dict.fromkeys(MEDIA_STATES, 10.0)]
    new = [dict.fromkeys(MEDIA_STATES, 5.0)]
    table = phase_attribution_table(phases, base, new)
    assert "-0.500" in table  # (5 - 10) / 10 records
    for state in MEDIA_STATES:
        assert state in table
