"""OS layer: buffer cache, sequential prefetcher, coalescer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.oscache.buffer_cache import LRUBufferCache
from repro.oscache.coalesce import Coalescer
from repro.oscache.prefetch import SequentialPrefetcher


class TestBufferCache:
    def test_read_miss_then_hit(self):
        cache = LRUBufferCache(4)
        assert not cache.read(10)
        cache.insert(10)
        assert cache.read(10)
        assert cache.read_hits == 1
        assert cache.read_misses == 1

    def test_lru_eviction_order(self):
        cache = LRUBufferCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.read(1)  # refresh 1
        cache.insert(3)  # evicts 2
        assert 1 in cache
        assert 2 not in cache

    def test_dirty_eviction_reports_writeback(self):
        cache = LRUBufferCache(2)
        cache.write(1)
        cache.insert(2)
        evicted = cache.insert(3)
        assert evicted == [1]
        assert cache.writebacks == 1

    def test_clean_eviction_is_silent(self):
        cache = LRUBufferCache(1)
        cache.insert(1)
        assert cache.insert(2) == []

    def test_write_hit_marks_dirty_without_eviction(self):
        cache = LRUBufferCache(2)
        cache.insert(1)
        hit, evicted = cache.write(1)
        assert hit and evicted == []
        assert cache.sync() == [1]

    def test_sync_clears_dirty_once(self):
        cache = LRUBufferCache(4)
        cache.write(1)
        cache.write(2)
        assert sorted(cache.sync()) == [1, 2]
        assert cache.sync() == []

    def test_rewrite_same_block_merges(self):
        """The mechanism turning 34% server writes into ~20% disk writes."""
        cache = LRUBufferCache(4)
        for _ in range(10):
            cache.write(7)
        assert cache.sync() == [7]

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            LRUBufferCache(0)

    def test_hit_rate(self):
        cache = LRUBufferCache(4)
        cache.insert(1)
        cache.read(1)
        cache.read(2)
        assert cache.read_hit_rate == pytest.approx(0.5)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_never_exceeds_capacity(self, blocks):
        cache = LRUBufferCache(8)
        for b in blocks:
            if b % 2:
                cache.write(b)
            else:
                cache.insert(b)
        assert len(cache) <= 8


class TestPrefetcher:
    def test_perfect_mode_fetches_to_end(self):
        pf = SequentialPrefetcher(perfect=True)
        assert pf.fetch_size(0, 0, 40) == 40
        assert pf.fetch_size(0, 35, 40) == 5

    def test_window_doubles_on_sequential_access(self):
        pf = SequentialPrefetcher(max_window_blocks=16, initial_window_blocks=1)
        sizes = []
        offset = 0
        for _ in range(6):
            size = pf.fetch_size(1, offset, 1000)
            sizes.append(size)
            offset += size
        assert sizes == [2, 4, 8, 16, 16, 16]

    def test_random_access_resets_window(self):
        pf = SequentialPrefetcher(max_window_blocks=16, initial_window_blocks=2)
        pf.fetch_size(1, 0, 1000)
        pf.fetch_size(1, 4, 1000)  # ramp continues? no: 4 == next_offset
        size = pf.fetch_size(1, 500, 1000)  # random jump
        assert size == 2

    def test_never_past_file_end(self):
        pf = SequentialPrefetcher(max_window_blocks=16, initial_window_blocks=8)
        assert pf.fetch_size(1, 6, 8) == 2

    def test_per_file_state_is_independent(self):
        pf = SequentialPrefetcher(max_window_blocks=16, initial_window_blocks=1)
        pf.fetch_size(1, 0, 100)
        pf.fetch_size(1, 2, 100)
        assert pf.fetch_size(2, 0, 100) == 2  # fresh file: initial ramp

    def test_offset_bounds(self):
        pf = SequentialPrefetcher()
        with pytest.raises(ConfigError):
            pf.fetch_size(1, 8, 8)

    def test_forget_drops_state(self):
        pf = SequentialPrefetcher(max_window_blocks=16, initial_window_blocks=1)
        pf.fetch_size(1, 0, 100)
        pf.forget(1)
        assert pf.tracked_files() == 0

    def test_bad_windows(self):
        with pytest.raises(ConfigError):
            SequentialPrefetcher(max_window_blocks=0)
        with pytest.raises(ConfigError):
            SequentialPrefetcher(max_window_blocks=4, initial_window_blocks=8)


class TestCoalescer:
    def test_prob_one_never_splits(self):
        co = Coalescer(1.0)
        assert co.split(10, 8) == [(10, 8)]
        assert co.observed_prob == 1.0

    def test_prob_zero_always_splits(self):
        co = Coalescer(0.0, rng=np.random.default_rng(0))
        assert co.split(10, 4) == [(10, 1), (11, 1), (12, 1), (13, 1)]

    def test_single_block_never_splits(self):
        co = Coalescer(0.0)
        assert co.split(5, 1) == [(5, 1)]

    def test_pieces_partition_the_run(self):
        co = Coalescer(0.5, rng=np.random.default_rng(1))
        pieces = co.split(100, 32)
        assert sum(n for _, n in pieces) == 32
        assert pieces[0][0] == 100
        for (s1, n1), (s2, _n2) in zip(pieces, pieces[1:]):
            assert s2 == s1 + n1

    def test_observed_prob_converges(self):
        co = Coalescer(0.87, rng=np.random.default_rng(2))
        for _ in range(300):
            co.split(0, 32)
        assert co.observed_prob == pytest.approx(0.87, abs=0.02)

    def test_split_many(self):
        co = Coalescer(1.0)
        assert co.split_many([(0, 4), (10, 2)]) == [(0, 4), (10, 2)]

    def test_bad_prob_rejected(self):
        with pytest.raises(ConfigError):
            Coalescer(1.5)

    def test_bad_run_rejected(self):
        with pytest.raises(ConfigError):
            Coalescer(0.5).split(0, 0)
