"""Block-organized controller cache (FOR's organization)."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.block import BlockCache
from repro.config import BlockPolicy
from repro.errors import CacheError


def test_capacity_must_be_positive():
    with pytest.raises(CacheError):
        BlockCache(0)


def test_fill_and_hit():
    cache = BlockCache(8)
    cache.fill([1, 2, 3])
    assert cache.missing([1, 2, 3]) == []
    assert cache.missing([4]) == [4]


def test_capacity_is_respected():
    cache = BlockCache(4)
    cache.fill(list(range(10)))
    assert len(cache) == 4


def test_mru_evicts_most_recently_consumed_first():
    """The block just delivered to the host is the best victim (§4)."""
    cache = BlockCache(4, policy=BlockPolicy.MRU)
    cache.fill([0, 1, 2, 3])
    cache.access([0, 1])  # 1 is now the most recently consumed
    cache.fill([10])
    assert not cache.contains(1)
    assert cache.contains(0)
    assert cache.contains(2) and cache.contains(3)  # unread read-ahead kept


def test_mru_preserves_unconsumed_readahead():
    cache = BlockCache(4, policy=BlockPolicy.MRU)
    cache.fill([0, 1, 2, 3])
    cache.access([0, 1, 2, 3])
    cache.fill([10, 11])
    # evictions hit consumed blocks; fresh read-ahead arrives intact
    assert cache.contains(10) and cache.contains(11)


def test_mru_falls_back_to_oldest_unconsumed():
    cache = BlockCache(4, policy=BlockPolicy.MRU)
    cache.fill([0, 1, 2, 3])  # nothing consumed
    cache.fill([10])
    assert not cache.contains(0)  # oldest unconsumed evicted
    assert cache.stats.useless_evictions == 1


def test_lru_evicts_oldest_unconsumed_first():
    cache = BlockCache(4, policy=BlockPolicy.LRU)
    cache.fill([0, 1, 2, 3])
    cache.access([0])
    cache.fill([10])
    assert not cache.contains(1)
    assert cache.contains(0)


def test_lru_falls_back_to_least_recent_consumed():
    cache = BlockCache(2, policy=BlockPolicy.LRU)
    cache.fill([0, 1])
    cache.access([0, 1])
    cache.fill([2])
    assert not cache.contains(0)
    assert cache.contains(1)


def test_access_moves_between_pools():
    cache = BlockCache(4)
    cache.fill([5])
    cache.access([5])
    cache.access([5])  # re-access of consumed block must not crash
    assert cache.contains(5)


def test_access_unknown_block_is_noop():
    cache = BlockCache(4)
    cache.access([99])
    assert len(cache) == 0


def test_invalidate():
    cache = BlockCache(4)
    cache.fill([1, 2])
    cache.access([1])
    cache.invalidate(1)
    cache.invalidate(2)
    cache.invalidate(3)  # absent: no-op
    assert len(cache) == 0


def test_free_blocks_property():
    cache = BlockCache(8)
    cache.fill([1, 2, 3])
    assert cache.free_blocks == 5


def test_duplicate_fill_not_double_counted():
    cache = BlockCache(8)
    cache.fill([1])
    cache.fill([1])
    assert len(cache) == 1
    assert cache.stats.blocks_filled == 1


def test_stats_hit_rate():
    cache = BlockCache(8)
    cache.fill([1, 2])
    cache.missing([1, 2, 3, 4])
    assert cache.stats.hit_rate == pytest.approx(0.5)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200),
    st.sampled_from([BlockPolicy.MRU, BlockPolicy.LRU]),
)
def test_never_exceeds_capacity(blocks, policy):
    cache = BlockCache(16, policy=policy)
    for b in blocks:
        cache.fill([b])
        if b % 3 == 0:
            cache.access([b])
    assert len(cache) <= 16


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=100))
def test_contains_consistent_with_missing(blocks):
    cache = BlockCache(8)
    cache.fill(blocks)
    for b in set(blocks):
        assert cache.contains(b) == (b not in cache.peek([b]))


# -- regression: an oversized fill must not evict its own head ---------


def test_oversized_fill_keeps_head_drops_tail():
    """A read-ahead run larger than the pool keeps its *head*.

    Regression: ``fill`` used to evict its own just-inserted blocks to
    make room for the run's tail, leaving the cache holding the end of
    the run while the host consumes from the start — every oversized
    fill became guaranteed misses.
    """
    cache = BlockCache(4, policy=BlockPolicy.MRU)
    cache.fill(list(range(10)))
    assert [b for b in range(10) if cache.contains(b)] == [0, 1, 2, 3]
    assert cache.stats.fill_overflow_blocks == 6
    assert len(cache) == 4


def test_oversized_fill_evicts_older_blocks_before_dropping_tail():
    cache = BlockCache(4, policy=BlockPolicy.MRU)
    cache.fill([100, 101])
    cache.access([100, 101])
    cache.fill(list(range(10)))
    # older consumed blocks make room for the run's head...
    assert not cache.contains(100) and not cache.contains(101)
    assert [b for b in range(10) if cache.contains(b)] == [0, 1, 2, 3]
    # ...and only the tail that cannot fit is sacrificed
    assert cache.stats.fill_overflow_blocks == 6


def test_oversized_fill_lru_policy_also_protected():
    cache = BlockCache(3, policy=BlockPolicy.LRU)
    cache.fill(list(range(8)))
    assert [b for b in range(8) if cache.contains(b)] == [0, 1, 2]
    assert cache.stats.fill_overflow_blocks == 5


def test_fill_overflow_counter_merges():
    a = BlockCache(2)
    a.fill([0, 1, 2])
    b = BlockCache(2)
    b.fill([5, 6, 7, 8])
    merged = a.stats.merge(b.stats)
    assert merged.fill_overflow_blocks == 3
