"""HDC host side: profiler, planner, manager, victim-cache variant."""

import pytest

from repro.array.striping import StripingLayout
from repro.config import ArrayParams, SchedulerKind, make_config
from repro.hdc.manager import HdcManager
from repro.hdc.planner import plan_pin_sets
from repro.hdc.profiler import BlockAccessProfiler
from repro.hdc.victim import VictimCacheManager
from repro.host.system import System
from repro.units import KB
from repro.workloads.trace import DiskAccess, Trace, TraceMeta


def make_trace(records):
    return Trace(records, TraceMeta())


class TestProfiler:
    def test_counts_reads_and_writes(self):
        profiler = BlockAccessProfiler()
        profiler.observe(DiskAccess([(0, 2)]))
        profiler.observe(DiskAccess([(1, 2)], is_write=True))
        assert profiler.counts[0] == 1
        assert profiler.counts[1] == 2
        assert profiler.counts[2] == 1
        assert profiler.records_seen == 2

    def test_of_trace(self):
        trace = make_trace([DiskAccess([(5, 1)])] * 3)
        profiler = BlockAccessProfiler.of(trace)
        assert profiler.counts[5] == 3
        assert profiler.total_accesses() == 3

    def test_hottest(self):
        profiler = BlockAccessProfiler()
        for _ in range(3):
            profiler.observe(DiskAccess([(7, 1)]))
        profiler.observe(DiskAccess([(9, 1)]))
        assert profiler.hottest(1) == [(7, 3)]


class TestPlanner:
    def striping(self):
        return StripingLayout(2, 4, 1000)

    def test_empty_inputs(self):
        plan = plan_pin_sets({}, self.striping(), 4)
        assert plan.n_blocks == 0
        plan = plan_pin_sets({1: 5}, self.striping(), 0)
        assert plan.n_blocks == 0

    def test_picks_hottest_per_disk(self):
        # logical 0..3 live on disk 0; 4..7 on disk 1
        counts = {0: 10, 1: 1, 4: 7, 5: 9}
        plan = plan_pin_sets(counts, self.striping(), 1)
        assert plan.per_disk[0] == [0]
        assert plan.per_disk[1] == [5]
        assert sorted(plan.logical_blocks) == [0, 5]

    def test_predicted_hit_rate(self):
        counts = {0: 8, 1: 2}
        plan = plan_pin_sets(counts, self.striping(), 1)
        assert plan.predicted_hit_rate == pytest.approx(0.8)

    def test_per_disk_capacity_respected(self):
        counts = {lb: 1 for lb in range(16)}
        plan = plan_pin_sets(counts, self.striping(), 3)
        assert all(len(blocks) <= 3 for blocks in plan.per_disk.values())

    def test_deterministic_tiebreak(self):
        counts = {0: 5, 1: 5, 2: 5}
        a = plan_pin_sets(counts, self.striping(), 2)
        b = plan_pin_sets(counts, self.striping(), 2)
        assert a.logical_blocks == b.logical_blocks == [0, 1]


class TestManager:
    def make_system(self):
        config = make_config(
            array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
            hdc_bytes=64 * KB,
            scheduler=SchedulerKind.FCFS,
        )
        return System(config)

    def test_setup_pins_plan(self):
        system = self.make_system()
        counts = {0: 5, 100: 3}
        plan = plan_pin_sets(counts, system.striping, 16)
        manager = HdcManager(system.sim, system.array, plan)
        assert manager.setup() == 2

    def test_finish_flushes_dirty(self):
        system = self.make_system()
        plan = plan_pin_sets({0: 5}, system.striping, 16)
        manager = HdcManager(system.sim, system.array, plan)
        manager.setup()
        done = []
        system.array.submit_logical(0, 1, is_write=True,
                                    on_complete=lambda: done.append(1))
        system.sim.run()
        assert done == [1]
        flushed = manager.finish()
        system.sim.run()
        assert flushed == 1

    def test_periodic_flush_fires(self):
        system = self.make_system()
        plan = plan_pin_sets({0: 5}, system.striping, 16)
        manager = HdcManager(system.sim, system.array, plan,
                             flush_interval_ms=10.0)
        manager.setup()
        system.sim.run(until=35.0)
        assert manager.periodic_flushes == 3
        manager.finish()  # stops rescheduling
        system.sim.run()
        assert system.sim.pending == 0


class TestVictimCache:
    def make_system(self, hdc_blocks=4):
        config = make_config(
            array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
            hdc_bytes=hdc_blocks * 4 * KB,
        )
        return System(config)

    def test_read_completion_pins_blocks(self):
        system = self.make_system()
        manager = VictimCacheManager(system.array, hdc_blocks_per_disk=4)
        manager.on_record_complete(DiskAccess([(0, 2)]))
        assert manager.pins == 2
        assert system.controllers[0].pinned.is_pinned(0)

    def test_writes_not_victim_cached(self):
        system = self.make_system()
        manager = VictimCacheManager(system.array, hdc_blocks_per_disk=4)
        manager.on_record_complete(DiskAccess([(0, 2)], is_write=True))
        assert manager.pins == 0

    def test_lru_unpin_when_full(self):
        system = self.make_system()
        manager = VictimCacheManager(system.array, hdc_blocks_per_disk=2)
        for lb in (0, 1, 2):  # all on disk 0 (unit = 4 blocks)
            manager.on_record_complete(DiskAccess([(lb, 1)]))
        assert manager.unpins == 1
        assert not system.controllers[0].pinned.is_pinned(0)
        assert system.controllers[0].pinned.is_pinned(2)

    def test_repinning_refreshes_lru(self):
        system = self.make_system()
        manager = VictimCacheManager(system.array, hdc_blocks_per_disk=2)
        manager.on_record_complete(DiskAccess([(0, 1)]))
        manager.on_record_complete(DiskAccess([(1, 1)]))
        manager.on_record_complete(DiskAccess([(0, 1)]))  # refresh 0
        manager.on_record_complete(DiskAccess([(2, 1)]))  # evicts 1
        assert system.controllers[0].pinned.is_pinned(0)
        assert not system.controllers[0].pinned.is_pinned(1)

    def test_zero_capacity_is_noop(self):
        system = self.make_system()
        manager = VictimCacheManager(system.array, hdc_blocks_per_disk=0)
        manager.on_record_complete(DiskAccess([(0, 1)]))
        assert manager.pins == 0
