"""The import-layering contract, enforced as a tier-1 test.

Runs :mod:`tools.check_layering` in-process so the staged-pipeline
boundaries (stage order, no private cross-imports, slim facade, cache
policy isolation, controller-free read-ahead) fail the suite — not
just CI lint — the moment they are violated.
"""

import importlib.util
from pathlib import Path

CHECKER = Path(__file__).resolve().parent.parent / "tools" / "check_layering.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_layering", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_layering_is_clean(capsys):
    checker = load_checker()
    assert checker.main() == 0, capsys.readouterr().err


def test_checker_sees_the_real_tree():
    """Guard against the checker silently scanning nothing."""
    checker = load_checker()
    stage_files = [
        checker.SRC / "repro" / "controller" / f"{stem}.py"
        for stem in checker.STAGE_ORDER
    ]
    assert all(p.is_file() for p in stage_files)


def test_checker_flags_violations(tmp_path, monkeypatch):
    """A planted upstream import is caught (the rules have teeth)."""
    checker = load_checker()
    src = tmp_path / "src"
    ctrl = src / "repro" / "controller"
    ctrl.mkdir(parents=True)
    (ctrl / "completion.py").write_text(
        "from repro.controller.frontend import Frontend\n"
    )
    (ctrl / "frontend.py").write_text("")
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_stage_order(errors)
    assert len(errors) == 1 and "non-downstream" in errors[0]


def test_checker_flags_ingest_controller_import(tmp_path, monkeypatch):
    checker = load_checker()
    src = tmp_path / "src"
    ingest = src / "repro" / "ingest"
    ingest.mkdir(parents=True)
    (ingest / "sneaky.py").write_text(
        "from repro.controller.commands import DiskCommand\n"
    )
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_ingest_independence(errors)
    assert len(errors) == 1 and "ingest" in errors[0]


def test_checker_flags_loadgen_consumer_import(tmp_path, monkeypatch):
    """Loadgen producing records for the host is one-way: a planted
    import of the replay machinery trips rule 7."""
    checker = load_checker()
    src = tmp_path / "src"
    loadgen = src / "repro" / "loadgen"
    loadgen.mkdir(parents=True)
    (loadgen / "sneaky.py").write_text(
        "from repro.host.streams import ReplayDriver\n"
        "from repro.workloads.trace import TimedAccess\n"  # allowed
    )
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_loadgen_independence(errors)
    assert len(errors) == 1 and "repro.host.streams" in errors[0]


def test_checker_flags_service_device_import(tmp_path, monkeypatch):
    """The service facade reaching under the host layer (a planted
    controller-internals import) trips rule 8; host-layer imports
    stay allowed."""
    checker = load_checker()
    src = tmp_path / "src"
    service = src / "repro" / "service"
    service.mkdir(parents=True)
    (service / "sneaky.py").write_text(
        "from repro.controller.controller import DiskController\n"
        "from repro.host.system import System\n"  # allowed
        "from repro.array.raid import MirroredArray\n"  # allowed
    )
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_service_independence(errors)
    assert len(errors) == 1 and "repro.controller.controller" in errors[0]


def test_checker_flags_device_internals_import(tmp_path, monkeypatch):
    """disk/ and array/ reaching past the device registry (planted
    mechanics and concrete-model imports) trip rule 9; the registry
    surface itself stays allowed."""
    checker = load_checker()
    src = tmp_path / "src"
    disk = src / "repro" / "disk"
    disk.mkdir(parents=True)
    (disk / "sneaky.py").write_text(
        "from repro.mechanics.service import ServiceTimeModel\n"
        "from repro.devices.base import DeviceModel\n"  # allowed
    )
    array = src / "repro" / "array"
    array.mkdir(parents=True)
    (array / "sneaky.py").write_text(
        "from repro.devices.flash import FlashServiceModel\n"
        "from repro.devices import make_device_model\n"  # allowed
    )
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_device_registry_surface(errors)
    assert len(errors) == 2
    assert "repro.mechanics.service" in errors[0]
    assert "repro.devices.flash" in errors[1]


def test_checker_flags_perfkit_internals_import(tmp_path, monkeypatch):
    """Perfkit reaching into the simulated hardware (planted controller
    and cache imports) trips rule 10; the obs/metrics surfaces and the
    experiments facade stay allowed."""
    checker = load_checker()
    src = tmp_path / "src"
    perfkit = src / "repro" / "perfkit"
    perfkit.mkdir(parents=True)
    (perfkit / "sneaky.py").write_text(
        "from repro.controller.stats import ControllerStats\n"
        "from repro.cache.core import CacheStats\n"
        "from repro.obs.timeline import merge_time_in_state\n"  # allowed
        "from repro.metrics.report import format_table\n"  # allowed
        "from repro.experiments.runner import TechniqueRunner\n"  # allowed
    )
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_perfkit_independence(errors)
    assert len(errors) == 2
    assert "repro.controller.stats" in errors[0]
    assert "repro.cache.core" in errors[1]


def test_checker_flags_private_cross_import(tmp_path, monkeypatch):
    checker = load_checker()
    src = tmp_path / "src"
    pkg = src / "repro"
    pkg.mkdir(parents=True)
    (pkg / "leaky.py").write_text("from repro.other import _secret\n")
    errors = []
    monkeypatch.setattr(checker, "SRC", src)
    checker.check_private_imports(errors)
    assert len(errors) == 1 and "_secret" in errors[0]
