"""The SSD tier in front of spinning disks (:mod:`repro.array.tier`).

The tier is a block-level LRU read cache: misses go to the backing
spindle and populate the flash slot, hits are served by flash at the
same physical address, writes go through and invalidate. These tests
pin the residency protocol (hit/miss/fill/invalidate/evict counters),
the hit routing (flash slot receives the media read) and the two
submission interfaces.
"""

import pytest

from repro.array.tier import SsdTierArray
from repro.config import ArrayParams, ultrastar_36z15_config
from repro.controller.commands import DiskCommand
from repro.errors import ConfigError, SimulationError
from repro.host.system import System
from repro.units import KB


@pytest.fixture
def tiered():
    """Two 36Z15 backing spindles fronted by two flash slots."""
    config = ultrastar_36z15_config(
        array=ArrayParams(n_disks=4, striping_unit_bytes=16 * KB),
        devices=("ultrastar_36z15",) * 2 + ("generic_ssd",) * 2,
        seed=3,
    )
    system = System(config)
    return system, SsdTierArray(system.array, n_backing=2)


def _read(system, tier, disk, start, n=4):
    done = []
    cmd = DiskCommand(disk, start, n, False, -1, lambda c: done.append(c))
    tier.submit_command(cmd)
    system.sim.run()
    assert done and done[0].error is None
    return cmd


def _write(system, tier, disk, start, n=4):
    cmd = DiskCommand(disk, start, n, True, -1, lambda c: None)
    tier.submit_command(cmd)
    system.sim.run()
    return cmd


def test_needs_backing_and_tier_slots(tiered):
    system, _ = tiered
    with pytest.raises(ConfigError):
        SsdTierArray(system.array, n_backing=0)
    with pytest.raises(ConfigError):
        SsdTierArray(system.array, n_backing=4)


def test_capacity_counts_the_backing_set_only(tiered):
    system, tier = tiered
    assert tier.n_disks == 4
    assert tier.n_backing == 2 and tier.n_tier == 2
    assert tier.logical_capacity_blocks == tier.striping.total_blocks
    assert tier.striping.n_disks == 2


def test_miss_populates_then_hit_serves_from_flash(tiered):
    system, tier = tiered
    _read(system, tier, 0, 128)
    assert (tier.tier_misses, tier.tier_hits, tier.tier_fills) == (1, 0, 1)
    before = system.controllers[tier.tier_for(0)].stats.commands
    _read(system, tier, 0, 128)
    assert (tier.tier_misses, tier.tier_hits) == (1, 1)
    assert tier.hit_rate() == 0.5
    # the hit went to the flash slot mapped to backing disk 0
    after = system.controllers[tier.tier_for(0)].stats.commands
    assert after == before + 1


def test_partial_residency_is_a_miss(tiered):
    system, tier = tiered
    _read(system, tier, 0, 128, n=4)
    _read(system, tier, 0, 130, n=4)  # overlaps but extends past the copy
    assert tier.tier_misses == 2 and tier.tier_hits == 0


def test_write_through_invalidates(tiered):
    system, tier = tiered
    _read(system, tier, 0, 128)
    _write(system, tier, 0, 130, n=2)
    assert tier.tier_invalidations == 2
    _read(system, tier, 0, 128)  # stale blocks gone → full-run miss
    assert tier.tier_misses == 2
    # the write itself landed on the backing spindle
    assert system.controllers[0].stats.media_blocks_written >= 2


def test_lru_eviction_when_capacity_shrunk(tiered):
    system, _ = tiered
    tier = SsdTierArray(system.array, n_backing=2, capacity_blocks=4)
    _read(system, tier, 0, 0, n=4)
    _read(system, tier, 0, 100, n=4)  # displaces the first run
    assert tier.tier_evictions == 4
    _read(system, tier, 0, 0, n=4)
    assert tier.tier_misses == 3 and tier.tier_hits == 0
    _read(system, tier, 0, 0, n=4)  # still resident after re-fill
    assert tier.tier_hits == 1


def test_populate_on_read_can_be_disabled(tiered):
    system, _ = tiered
    tier = SsdTierArray(system.array, n_backing=2, populate_on_read=False)
    _read(system, tier, 0, 128)
    _read(system, tier, 0, 128)
    assert tier.tier_fills == 0 and tier.tier_hits == 0
    assert tier.tier_misses == 2


def test_submit_logical_spans_backing_stripes(tiered):
    system, tier = tiered
    done = []
    unit = tier.striping.unit_blocks
    commands = tier.submit_logical(
        0, unit + 2, on_complete=lambda: done.append(1)
    )
    system.sim.run()
    assert done == [1]
    assert sorted(c.disk_id for c in commands) == [0, 1]
    assert tier.tier_misses == 2


def test_submit_command_rejects_tier_addresses(tiered):
    _, tier = tiered
    with pytest.raises(SimulationError):
        tier.submit_command(DiskCommand(2, 0, 4))


def test_tier_slots_round_robin_over_backing(tiered):
    _, tier = tiered
    assert tier.tier_for(0) == 2
    assert tier.tier_for(1) == 3
