"""Cooperative HDC caching across controllers (§5 extension)."""

from collections import Counter

import pytest

from repro.array.striping import StripingLayout
from repro.config import ArrayParams, make_config
from repro.errors import ConfigError
from repro.hdc.cooperative import CooperativeHdc, plan_cooperative_pins
from repro.host.system import System
from repro.units import KB


def striping():
    return StripingLayout(2, 4, 1000)  # disk0: lb 0..3, disk1: lb 4..7, ...


class TestPlanner:
    def test_home_disk_preferred(self):
        counts = Counter({0: 10, 4: 9})
        plan = plan_cooperative_pins(counts, striping(), 2)
        assert 0 in plan[0]
        assert 4 in plan[1]

    def test_spill_to_other_controller(self):
        # four hot blocks all on disk 0; capacity 2 per controller
        counts = Counter({0: 10, 1: 9, 2: 8, 3: 7})
        plan = plan_cooperative_pins(counts, striping(), 2)
        assert sorted(plan[0]) == [0, 1]
        assert sorted(plan[1]) == [2, 3]  # spilled to disk 1's region

    def test_total_capacity_respected(self):
        counts = Counter({lb: 100 - lb for lb in range(50)})
        plan = plan_cooperative_pins(counts, striping(), 3)
        assert sum(len(v) for v in plan.values()) == 6

    def test_zero_capacity(self):
        plan = plan_cooperative_pins(Counter({0: 1}), striping(), 0)
        assert all(not v for v in plan.values())

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            plan_cooperative_pins(Counter(), striping(), -1)


@pytest.fixture
def coop_system(small_disk, small_cache):
    config = make_config(
        disk=small_disk,
        cache=small_cache,
        array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
        hdc_bytes=32 * KB,
        seed=4,
    )
    return System(config)


class TestCooperativeHdc:
    def test_home_hits_served_without_media(self, coop_system):
        system = coop_system
        # lb 0..3 are on disk 0 (unit = 4 blocks)
        coop = CooperativeHdc(system.array, {0: [0, 1], 1: []})
        done = []
        served = coop.submit_read(0, 2, on_complete=lambda: done.append(1))
        system.sim.run()
        assert served == 2
        assert done == [1]
        assert system.array.controller_stats().media_reads == 0
        assert coop.home_hits == 2

    def test_remote_replica_counts_as_remote_hit(self, coop_system):
        system = coop_system
        # lb 0 (home disk 0) pinned at controller 1 (spill)
        coop = CooperativeHdc(system.array, {0: [], 1: [0]})
        coop.submit_read(0, 1)
        system.sim.run()
        assert coop.remote_hits == 1
        assert system.array.controller_stats().media_reads == 0

    def test_partial_hit_issues_remainder(self, coop_system):
        system = coop_system
        coop = CooperativeHdc(system.array, {0: [1], 1: []})
        done = []
        served = coop.submit_read(0, 3, on_complete=lambda: done.append(1))
        system.sim.run()
        assert served == 1
        assert done == [1]
        # media read(s) cover the unpinned blocks 0 and 2
        assert system.array.controller_stats().media_reads >= 1

    def test_write_invalidates_remote_copy_only(self, coop_system):
        system = coop_system
        coop = CooperativeHdc(system.array, {0: [4], 1: [0]})  # both remote?
        # lb 4's home is disk 1; pinned at controller 0 => remote.
        # lb 0's home is disk 0; pinned at controller 1 => remote.
        dropped = coop.invalidate_on_write(0, 1)
        assert dropped == 1
        assert 0 not in coop.directory
        assert 4 in coop.directory
        assert coop.invalidations == 1

    def test_home_pin_survives_write(self, coop_system):
        system = coop_system
        coop = CooperativeHdc(system.array, {0: [0], 1: []})
        assert coop.invalidate_on_write(0, 1) == 0
        assert 0 in coop.directory

    def test_read_with_no_pins_falls_through(self, coop_system):
        system = coop_system
        coop = CooperativeHdc(system.array, {0: [], 1: []})
        done = []
        served = coop.submit_read(8, 2, on_complete=lambda: done.append(1))
        system.sim.run()
        assert served == 0
        assert done == [1]
        assert system.array.controller_stats().media_reads >= 1

    def test_cooperation_beats_home_only_for_skewed_homes(self, coop_system):
        """When one disk owns all hot blocks, cooperation pins more of
        them than the paper's per-disk policy can."""
        system = coop_system
        capacity = 8  # blocks per controller (32 KB / 4 KB)
        hot = list(range(0, 4)) + list(range(8, 12)) + list(range(16, 24))
        counts = Counter({lb: 100 - i for i, lb in enumerate(hot)})
        plan = plan_cooperative_pins(counts, system.striping, capacity)
        pinned_coop = sum(len(v) for v in plan.values())
        # per-disk policy: all 16 hot blocks live on disk 0, cap 8
        from repro.hdc.planner import plan_pin_sets

        home_only = plan_pin_sets(counts, system.striping, capacity)
        assert pinned_coop > home_only.n_blocks
