"""Shared fixtures: small, fast configurations for unit tests."""

from __future__ import annotations

import pytest

from repro.config import (
    ArrayParams,
    CacheParams,
    DiskParams,
    SimConfig,
    make_config,
)
from repro.units import KB, MB


@pytest.fixture
def small_disk() -> DiskParams:
    """A 64-MB toy disk with realistic mechanics (fast to simulate)."""
    return DiskParams(capacity_bytes=64 * MB)


@pytest.fixture
def small_cache() -> CacheParams:
    """A 256-KB cache of eight 32-KB segments."""
    return CacheParams(
        size_bytes=256 * KB,
        block_size=4 * KB,
        segment_size_bytes=32 * KB,
        n_segments=8,
    )


@pytest.fixture
def small_config(small_disk, small_cache) -> SimConfig:
    """Two tiny disks, 16-KB striping unit — a fast full system."""
    return make_config(
        disk=small_disk,
        cache=small_cache,
        array=ArrayParams(n_disks=2, striping_unit_bytes=16 * KB),
        seed=42,
    )


@pytest.fixture
def paper_config() -> SimConfig:
    """The paper's Table 1 system (18-GB disks, 8-wide array)."""
    return make_config(seed=42)
