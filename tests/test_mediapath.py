"""MediaPath stage in isolation: retry, timeout and offline orderings.

The fault machinery used to be woven through the controller god-class;
these tests exercise it directly on the extracted
:class:`~repro.controller.mediapath.MediaPath` via a minimal
single-disk controller, pinning down the two orderings the stage
guarantees:

* **requeue after transient error** — the failed job leaves the media,
  the backoff timer runs while *other* queued jobs use the media, and
  the job re-enters the scheduler only when the backoff expires;
* **abort on offline** — a job whose backoff expires inside a
  whole-disk failure window is failed upward with ``DISK_FAILED``
  without touching the scheduler, and a disk-failure transition drains
  every queued job in scheduler order.
"""


from repro.bus.scsi import ScsiBus
from repro.cache.block import BlockCache
from repro.config import BusParams, DiskParams
from repro.controller.commands import DiskCommand
from repro.controller.controller import DiskController
from repro.controller.mediapath import MediaJob
from repro.disk.drive import DiskDrive
from repro.faults.injector import DISK_FAILED, MEDIA_ERROR, FaultInjector
from repro.faults.plan import DiskFaultPlan
from repro.faults.profile import RetryPolicy
from repro.mechanics.service import ServiceTimeModel
from repro.readahead.none import NoReadAhead
from repro.scheduling.fcfs import FCFSScheduler
from repro.sim.engine import Simulator
from repro.units import KB, MB


def make_controller(transient_ops=frozenset(), retry=None):
    sim = Simulator()
    disk = DiskParams(capacity_bytes=64 * MB)
    service = ServiceTimeModel(disk, 4 * KB, deterministic_rotation=True)
    drive = DiskDrive(0, sim, service)
    controller = DiskController(
        disk_id=0,
        sim=sim,
        drive=drive,
        scheduler=FCFSScheduler(),
        cache=BlockCache(64),
        readahead=NoReadAhead(),
        bus=ScsiBus(sim, BusParams()),
        block_size=4 * KB,
    )
    if retry is not None:
        injector = FaultInjector(0, DiskFaultPlan(transient_ops=transient_ops))
        controller.attach_faults(injector, retry)
    return sim, controller


class TestTransientRetry:
    def test_transient_error_retried_then_succeeds(self):
        retry = RetryPolicy(max_retries=2, backoff_base_ms=1.0)
        sim, controller = make_controller(frozenset({0}), retry)
        done = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: done.append(c))
        )
        sim.run()
        assert len(done) == 1 and done[0].error is None
        assert controller.stats.media_errors == 1
        assert controller.stats.media_retries == 1
        assert controller.stats.media_reads == 2  # original + retry
        assert controller.stats.failed_commands == 0

    def test_retry_exhaustion_fails_with_last_error(self):
        retry = RetryPolicy(max_retries=1, backoff_base_ms=1.0)
        sim, controller = make_controller(frozenset({0, 1}), retry)
        done = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: done.append(c))
        )
        sim.run()
        assert done[0].error == MEDIA_ERROR
        assert controller.stats.media_retries == 1
        assert controller.stats.failed_commands == 1

    def test_media_free_for_others_during_backoff(self):
        """Requeue ordering: the backing-off job yields the media.

        Command A's first media op fails; during A's backoff window
        command B (queued behind it) must dispatch and complete first,
        then A's retry runs. Completion order is therefore B, A.
        """
        retry = RetryPolicy(max_retries=2, backoff_base_ms=100.0)
        sim, controller = make_controller(frozenset({0}), retry)
        order = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: order.append("A"))
        )
        controller.submit(
            DiskCommand(0, 5000, 2, on_complete=lambda c: order.append("B"))
        )
        sim.run()
        assert order == ["B", "A"]
        assert controller.stats.media_retries == 1

    def test_no_retry_without_policy(self):
        sim, controller = make_controller()
        assert controller.retry is None and controller.faults is None
        done = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: done.append(c))
        )
        sim.run()
        assert done[0].error is None
        assert controller.stats.media_retries == 0


class TestTimeout:
    def test_over_deadline_completion_counts_timeout(self):
        # Every op is "clean" but the deadline is absurdly tight, so
        # each completion classifies as a timeout until retries run out.
        retry = RetryPolicy(
            max_retries=1, backoff_base_ms=1.0, command_timeout_ms=0.001
        )
        sim, controller = make_controller(frozenset(), retry)
        done = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: done.append(c))
        )
        sim.run()
        assert done[0].error == "timeout"
        assert controller.stats.command_timeouts == 2  # original + retry
        assert controller.stats.media_retries == 1
        assert controller.stats.failed_commands == 1


class TestOffline:
    def test_backoff_expiry_on_offline_disk_aborts(self):
        """A job whose backoff expires while the disk is failed is
        aborted with DISK_FAILED instead of being requeued."""
        retry = RetryPolicy(max_retries=3, backoff_base_ms=50.0)
        sim, controller = make_controller(frozenset({0}), retry)
        done = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: done.append(c))
        )
        # Fail the disk inside the backoff window: after the media op
        # errors (a few ms in) but before the 50 ms backoff expires.
        def fail_disk():
            controller.faults.failed = True
            controller.fault_transition("fail", 0)

        sim.schedule(25.0, fail_disk)
        sim.run()
        assert done[0].error == DISK_FAILED
        assert controller.stats.failed_commands == 1
        assert controller.queue_length == 0

    def test_fail_transition_drains_queue_in_order(self):
        sim, controller = make_controller(frozenset(), RetryPolicy())
        failed = []
        # Saturate the media with one in-flight op, then queue two more.
        for tag, start in (("A", 100), ("B", 5000), ("C", 9000)):
            controller.submit(
                DiskCommand(
                    0, start, 2,
                    on_complete=lambda c, t=tag: failed.append((t, c.error)),
                )
            )
        controller.faults.failed = True
        controller.fault_transition("fail", 0)
        # B and C are drained synchronously, before any more sim time.
        assert [t for t, _ in failed] == ["B", "C"]
        sim.run()
        # A was already on the media: an in-flight clean operation is
        # allowed to finish and deliver (only errors consult offline).
        errors = dict(failed)
        assert errors["A"] is None
        assert errors["B"] == DISK_FAILED
        assert errors["C"] == DISK_FAILED
        assert controller.queue_length == 0
        assert controller.stats.failed_commands == 2

    def test_submit_fail_fast_when_offline(self):
        sim, controller = make_controller(frozenset(), RetryPolicy())
        controller.faults.failed = True
        done = []
        controller.submit(
            DiskCommand(0, 100, 2, on_complete=lambda c: done.append(c))
        )
        assert done == []  # async completion: not inside submit()
        sim.run()
        assert done[0].error == DISK_FAILED
        assert controller.stats.media_reads == 0

    def test_recover_transition_restarts_service(self):
        sim, controller = make_controller(frozenset(), RetryPolicy())
        done = []
        # Slip a job into the scheduler without kicking, simulating work
        # queued while the disk was failed; recovery must restart the
        # service loop for it.
        job = MediaJob(MediaJob.INTERNAL_READ, None, 100, 2, lambda: done.append(1))
        controller.scheduler.push(
            controller.drive.geometry.cylinder_of(100), job, sim.now
        )
        assert controller.queue_length == 1
        controller.fault_transition("recover", 0)
        sim.run()
        assert done == [1]
        assert controller.queue_length == 0
