"""Smoke-run every figure driver at tiny scale; check series shapes."""

import math

import pytest

from repro.experiments import (
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    table1,
    table2,
    validation,
)


class TestFig01:
    def test_series_and_paper_trends(self):
        result = fig01.run(scale=0.1, frag_points=(0.0, 0.05, 0.2))
        assert result.x_values == [0.0, 5.0, 20.0]
        for size in (2, 4, 8, 16, 32):
            sim = result.get(f"{size}blk_sim")
            # zero fragmentation recovers the full file size
            assert sim[0] == pytest.approx(size, rel=0.01)
            # runs shrink monotonically with fragmentation
            assert sim[0] >= sim[1] >= sim[2]


class TestFig02:
    def test_counts_decrease_with_rank(self):
        result = fig02.run(scale=0.004, ranks=(1, 10, 100))
        for name in ("Web", "Proxy", "File", "zipf(0.43)"):
            series = result.get(name)
            assert series[0] >= series[1] >= series[2]


class TestFig03:
    def test_for_never_loses_and_is_normalized(self):
        result = fig03.run(scale=0.05, file_sizes_kb=(8, 16, 64))
        assert all(v == pytest.approx(1.0) for v in result.get("Segm"))
        for v in result.get("FOR"):
            assert v <= 1.05
        # FOR clearly ahead at 16-KB files
        assert result.get("FOR")[1] < 0.85

    def test_nora_loses_badly_for_large_files(self):
        result = fig03.run(scale=0.05, file_sizes_kb=(16, 128))
        assert result.get("No-RA")[1] > 1.1


class TestFig04:
    def test_for_gains_grow_with_streams(self):
        result = fig04.run(scale=0.1, stream_counts=(64, 512))
        for_series = result.get("FOR")
        assert for_series[0] < 0.9
        assert for_series[1] <= for_series[0] + 0.05


class TestFig05:
    def test_hit_rate_monotone_in_alpha(self):
        result = fig05.run(scale=0.08, alphas=(0.0, 1.0))
        hits = result.get("hdc_hit_rate")
        assert hits[1] > hits[0]

    def test_hdc_helps(self):
        result = fig05.run(scale=0.08, alphas=(0.8,))
        assert result.get("Segm+HDC")[0] < 1.0
        assert result.get("FOR+HDC")[0] < result.get("FOR")[0] + 0.02


class TestFig06:
    def test_for_gains_shrink_with_writes(self):
        result = fig06.run(scale=0.08, write_fractions=(0.0, 0.6))
        for_series = result.get("FOR")
        assert for_series[1] > for_series[0]


class TestServerFigures:
    def test_fig07_reports_four_systems(self):
        result = fig07.run(scale=0.003, units_kb=(16, 64))
        for name in ("Segm", "Segm+HDC", "FOR", "FOR+HDC"):
            series = result.get(name)
            assert len(series) == 2
            assert all(v > 0 for v in series)

    def test_fig07_for_beats_segm(self):
        result = fig07.run(scale=0.003, units_kb=(16,))
        assert result.get("FOR")[0] < result.get("Segm")[0]

    def test_fig08_reports_hit_rate_growth(self):
        result = fig08.run(scale=0.003, hdc_sizes_kb=(256, 2048))
        hits = result.get("hdc_hit_rate")
        assert hits[1] >= hits[0]

    def test_fig08_infeasible_points_are_nan_not_crash(self):
        # 3.75 MB HDC + FOR bitmap exceeds the 4-MB cache.
        result = fig08.run(scale=0.003, hdc_sizes_kb=(3840,))
        assert math.isnan(result.get("FOR+HDC")[0])


class TestTables:
    def test_table1_runs(self):
        result = table1.run()
        assert len(result.x_values) > 5

    def test_table2_single_server(self):
        result = table2.run(scale=0.004, servers=("Web",))
        assert result.x_values == ["Web"]
        assert result.get("FOR")[0] > 0  # FOR improves on Segm

    def test_validation_experiment(self):
        result = validation.run(scale=0.3)
        assert all(e < 0.1 for e in result.get("error_frac"))
